//! Resumable on-disk result store and multi-machine shard merging.
//!
//! A [`ResultStore`] is a directory holding one campaign's (or one
//! campaign *shard's*) results durably:
//!
//! - `manifest.json` — campaign name, a deterministic **fingerprint**
//!   of the expanded job list, the total job count, which shard of how
//!   many this store holds, and (for CLI-launched campaigns) the spec
//!   axes, so `eend-cli campaign merge` can re-expand the grid without
//!   re-stating it;
//! - `records.jsonl` — one appended JSON line per finished job, keyed
//!   by the job's global expansion index and carrying the **full**
//!   [`RunMetrics`], written through the streaming executor in job
//!   order and flushed per record.
//!
//! Because every line is self-delimiting and flushed, a killed process
//! loses at most one partial trailing line — which
//! [`ResultStore::open`] detects and ignores. Re-opening the store
//! against the same spec (the fingerprint check refuses a different
//! one) and calling [`ResultStore::run`] again simulates **only the
//! missing jobs**: an interrupted-then-resumed campaign reassembles to
//! the byte-identical [`CampaignResult`] a one-shot run produces.
//!
//! Sharding composes with this: `CampaignSpec::shard(i, n)` slices the
//! job list round-robin, each machine runs its slice into its own
//! store, and [`merge_stores`] reassembles the shards into one result,
//! verifying the fingerprints agree and every job is covered exactly
//! once. [`merge_stores_streaming`] does the same merge straight into a
//! [`RecordSink`], holding one record per store instead of the whole
//! grid — the path `eend-cli campaign merge --csv` and the serve
//! daemon's aggregate endpoint run on.

use crate::executor::{FailurePolicy, JobFailure, JobScheduler};
use crate::report::{json_num, json_str, CampaignResult, Record};
use crate::sink::RecordSink;
use crate::spec::{BaseScenario, CampaignSpec, FailurePlan, Job};
use eend_radio::EnergyReport;
use eend_sim::SimDuration;
use eend_wireless::{stacks, RunMetrics};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Manifest file name inside a store directory.
const MANIFEST_FILE: &str = "manifest.json";
/// Record shard file name inside a store directory.
pub(crate) const RECORDS_FILE: &str = "records.jsonl";
/// Contained-job-failure log inside a store directory.
pub(crate) const FAILURES_FILE: &str = "failures.jsonl";

/// Writes `bytes` to `path` atomically: a unique temp sibling, flushed
/// and synced, then renamed over the destination, followed by a
/// best-effort fsync of the containing directory so the rename itself
/// survives a crash. Readers never observe a half-written file — they
/// see the old content or the new, so a kill mid-write can no longer
/// strand a torn `manifest.json` (or bench record) on disk.
///
/// Failpoints: `fs.write` (before the temp file is written) and
/// `fs.rename` (after the temp file is durable, before the rename).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| bad_data(format!("cannot atomically write to {}", path.display())))?;
    let tmp = dir.join(format!(".{}.tmp-{}", file_name.to_string_lossy(), std::process::id()));
    let res = (|| {
        eend_fail::io_guard("fs.write")?;
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        eend_fail::io_guard("fs.rename")?;
        std::fs::rename(&tmp, path)?;
        // Not every platform allows opening a directory for sync; the
        // rename is already atomic, this only hardens against power loss.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------
// Fingerprinting.

/// A deterministic fingerprint of an expanded campaign: FNV-1a over the
/// campaign name and every job's grid coordinates, seed, and duration.
/// Two machines that expand the same spec compute the same fingerprint;
/// any change to an axis, a seed range, or the horizon changes it —
/// which is how a store refuses to resume under a different spec.
pub fn fingerprint(campaign: &str, jobs: &[Job]) -> u64 {
    let mut h = Fnv::new();
    h.str(campaign);
    h.u64(jobs.len() as u64);
    for j in jobs {
        h.u64(j.index as u64);
        h.str(&j.point.stack.name);
        h.u64(j.point.rate_kbps.to_bits());
        h.u64(j.point.nodes as u64);
        h.u64(j.point.speed_mps.to_bits());
        // The traffic label carries the model's parameters
        // (`TrafficModel::label`) and the radio label names a fixed
        // registry profile, so hashing the labels pins both axes.
        h.str(&j.point.traffic);
        h.str(&j.point.radio);
        h.str(&j.point.failure);
        h.u64(j.point.seed);
        h.u64(j.scenario.duration.as_nanos());
        // The failure *label* above is free text — hash the actual kill
        // schedule too, or two plans with the same label would collide
        // and a store would resume under different failure injections.
        h.u64(j.scenario.node_failures.len() as u64);
        for &(at, node) in &j.scenario.node_failures {
            h.u64(at.as_nanos());
            h.u64(node as u64);
        }
        // Likewise the radio label: every unnamed builder-supplied mix
        // is spelled "custom", so hash the actual base card and
        // per-node assignment or two different hardware mixes would
        // resume into one store.
        hash_card(&mut h, &j.scenario.card);
        match &j.scenario.card_assignment {
            eend_wireless::CardAssignment::Uniform => h.u64(0),
            eend_wireless::CardAssignment::Alternating(cards) => {
                h.u64(1 + cards.len() as u64);
                for c in cards {
                    hash_card(&mut h, c);
                }
            }
        }
    }
    h.finish()
}

/// Hashes a radio card's identity: name plus every power-model
/// parameter, so even two cards sharing a name cannot collide.
fn hash_card(h: &mut Fnv, c: &eend_radio::RadioCard) {
    h.str(c.name);
    for v in [
        c.p_idle_mw,
        c.p_rx_mw,
        c.p_sleep_mw,
        c.p_base_mw,
        c.alpha2,
        c.path_loss_n,
        c.nominal_range_m,
        c.switch_energy_mj,
    ] {
        h.u64(v.to_bits());
    }
}

/// FNV-1a, 64-bit: tiny, stable across platforms, good enough to tell
/// two campaign grids apart.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Spec axes (the CLI-expressible subset of a CampaignSpec).

/// The axes of a CLI-launched campaign, as stored in a manifest so that
/// `merge` (and a resume on another machine) can rebuild the spec
/// without the user re-stating it. Stacks, traffic models and radio
/// profiles are stored by name/label and resolved through their
/// registries ([`eend_wireless::stacks::by_name`],
/// [`eend_wireless::TrafficModel::parse`],
/// [`eend_wireless::radio_profiles::by_name`]); failure plans serialize
/// in full (label + kill schedule). Campaigns whose stacks or profiles
/// are not registry members — typically custom
/// [`crate::spec::CampaignSpec::expand_with`] builders — cannot be
/// represented here and use the job-list APIs directly.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecAxes {
    /// Preset family ([`BaseScenario::name`] spelling).
    pub preset: String,
    /// Stack names, in sweep order.
    pub stacks: Vec<String>,
    /// Rate axis (Kbit/s); empty = preset default.
    pub rates: Vec<f64>,
    /// Node-count axis (density preset only).
    pub node_counts: Vec<usize>,
    /// Mobility-speed axis (m/s).
    pub speeds: Vec<f64>,
    /// Traffic-model axis ([`eend_wireless::TrafficModel::label`]
    /// spellings); empty = CBR only.
    pub traffic: Vec<String>,
    /// Radio-profile axis (registry names); empty = uniform only.
    pub radio: Vec<String>,
    /// Failure-plan axis (full plans, not just labels); empty = none.
    pub failures: Vec<FailurePlan>,
    /// Seeded runs per cell.
    pub seeds: u64,
    /// Seed offset.
    pub seed_base: u64,
    /// Duration override in seconds.
    pub secs: Option<u64>,
}

impl SpecAxes {
    /// Captures the axes of `spec` (stacks, traffic models and radio
    /// profiles by name; failure plans in full). Returns `None` when a
    /// stack or radio profile is not a registry member — such a spec
    /// cannot be rebuilt from names alone.
    pub fn of(spec: &CampaignSpec) -> Option<SpecAxes> {
        for s in &spec.stacks {
            if stacks::by_name(&s.name).as_ref() != Some(s) {
                return None;
            }
        }
        for p in &spec.radio_profiles {
            if eend_wireless::radio_profiles::by_name(p.name).as_ref() != Some(p) {
                return None;
            }
        }
        Some(SpecAxes {
            preset: spec.base.name().to_owned(),
            stacks: spec.stacks.iter().map(|s| s.name.clone()).collect(),
            rates: spec.rates_kbps.clone(),
            node_counts: spec.node_counts.clone(),
            speeds: spec.speeds_mps.clone(),
            traffic: spec.traffic_models.iter().map(|m| m.label()).collect(),
            radio: spec.radio_profiles.iter().map(|p| p.name.to_owned()).collect(),
            failures: spec.failures.clone(),
            seeds: spec.seed_count,
            seed_base: spec.seed_base,
            secs: spec.secs,
        })
    }

    /// Rebuilds the [`CampaignSpec`] these axes describe.
    pub fn to_spec(&self, campaign: &str) -> io::Result<CampaignSpec> {
        let base = BaseScenario::parse(&self.preset)
            .ok_or_else(|| bad_data(format!("manifest names unknown preset {:?}", self.preset)))?;
        let mut stack_list = Vec::with_capacity(self.stacks.len());
        for name in &self.stacks {
            stack_list.push(stacks::by_name(name).ok_or_else(|| {
                bad_data(format!("manifest names unknown stack {name:?}"))
            })?);
        }
        let mut traffic = Vec::with_capacity(self.traffic.len());
        for label in &self.traffic {
            traffic.push(eend_wireless::TrafficModel::parse(label).ok_or_else(|| {
                bad_data(format!("manifest names unknown traffic model {label:?}"))
            })?);
        }
        let mut radio = Vec::with_capacity(self.radio.len());
        for name in &self.radio {
            radio.push(eend_wireless::radio_profiles::by_name(name).ok_or_else(|| {
                bad_data(format!("manifest names unknown radio profile {name:?}"))
            })?);
        }
        let mut spec = CampaignSpec::new(campaign, base)
            .stacks(stack_list)
            .rates(self.rates.clone())
            .node_counts(self.node_counts.clone())
            .speeds(self.speeds.clone())
            .traffic(traffic)
            .radio_profiles(radio)
            .failures(self.failures.clone())
            .seeds(self.seeds)
            .seed_base(self.seed_base);
        if let Some(secs) = self.secs {
            spec = spec.secs(secs);
        }
        Ok(spec)
    }

    /// Renders these axes as a JSON object — the `"axes"` value of
    /// `manifest.json`, and the schema `eend-serve`'s submit endpoint
    /// accepts, so a spec submitted over the wire is exactly a `--out`
    /// campaign.
    pub fn to_json(&self) -> String {
        let failures = self
            .failures
            .iter()
            .map(|p| {
                let kills = p
                    .kills
                    .iter()
                    .map(|&(at, node)| format!("[{},{node}]", json_num(at)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{\"label\":{},\"kills\":[{kills}]}}", json_str(&p.label))
            })
            .collect::<Vec<_>>()
            .join(",");
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"preset\":{},\"stacks\":[{}],\"rates\":[{}],\
             \"node_counts\":[{}],\"speeds\":[{}],\"traffic\":[{}],\
             \"radio\":[{}],\"failures\":[{failures}],\"seeds\":{},\
             \"seed_base\":{},\"secs\":{}}}",
            json_str(&self.preset),
            self.stacks.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(","),
            self.rates.iter().map(|r| json_num(*r)).collect::<Vec<_>>().join(","),
            self.node_counts.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(","),
            self.speeds.iter().map(|v| json_num(*v)).collect::<Vec<_>>().join(","),
            self.traffic.iter().map(|t| json_str(t)).collect::<Vec<_>>().join(","),
            self.radio.iter().map(|r| json_str(r)).collect::<Vec<_>>().join(","),
            self.seeds,
            self.seed_base,
            match self.secs {
                Some(v) => v.to_string(),
                None => "null".to_owned(),
            }
        );
        s
    }

    /// Parses the JSON object form produced by [`SpecAxes::to_json`].
    pub fn from_json(text: &str) -> io::Result<SpecAxes> {
        SpecAxes::from_jval(&parse_json(text)?)
    }

    /// Parses an already-parsed axes object (shared by the manifest
    /// reader and the serve submit endpoint).
    pub(crate) fn from_jval(a: &JVal) -> io::Result<SpecAxes> {
        Ok(SpecAxes {
            preset: a.get("preset")?.str()?.to_owned(),
            stacks: a
                .get("stacks")?
                .arr()?
                .iter()
                .map(|s| s.str().map(str::to_owned))
                .collect::<io::Result<_>>()?,
            rates: a.get("rates")?.arr()?.iter().map(|x| x.f64()).collect::<io::Result<_>>()?,
            node_counts: a
                .get("node_counts")?
                .arr()?
                .iter()
                .map(|x| x.usize())
                .collect::<io::Result<_>>()?,
            speeds: a.get("speeds")?.arr()?.iter().map(|x| x.f64()).collect::<io::Result<_>>()?,
            traffic: a
                .get("traffic")?
                .arr()?
                .iter()
                .map(|t| t.str().map(str::to_owned))
                .collect::<io::Result<_>>()?,
            radio: a
                .get("radio")?
                .arr()?
                .iter()
                .map(|r| r.str().map(str::to_owned))
                .collect::<io::Result<_>>()?,
            failures: a
                .get("failures")?
                .arr()?
                .iter()
                .map(|p| {
                    Ok(FailurePlan {
                        label: p.get("label")?.str()?.to_owned(),
                        kills: p
                            .get("kills")?
                            .arr()?
                            .iter()
                            .map(|k| {
                                let k = k.arr()?;
                                if k.len() != 2 {
                                    return Err(bad_data("kill needs [secs, node]"));
                                }
                                Ok((k[0].f64()?, k[1].usize()?))
                            })
                            .collect::<io::Result<_>>()?,
                    })
                })
                .collect::<io::Result<_>>()?,
            seeds: a.get("seeds")?.u64()?,
            seed_base: a.get("seed_base")?.u64()?,
            secs: match a.get("secs")? {
                JVal::Null => None,
                x => Some(x.u64()?),
            },
        })
    }
}

// ---------------------------------------------------------------------
// Manifest.

/// The identity of a store: which campaign, which expansion (by
/// fingerprint), and which shard of it this directory holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Campaign name.
    pub campaign: String,
    /// [`fingerprint`] of the **full** expanded job list (all shards).
    pub fingerprint: u64,
    /// Job count of the full expansion.
    pub total_jobs: usize,
    /// Which shard this store holds (0-based).
    pub shard_index: usize,
    /// Of how many shards (1 = unsharded).
    pub shard_count: usize,
    /// CLI-expressible axes, when the campaign has them.
    pub axes: Option<SpecAxes>,
    /// The [`FailurePolicy`] label this store runs under (`None` =
    /// abort, the default). Stored beside the axes so a *resumed*
    /// campaign keeps the policy it was launched with; not part of the
    /// store's identity, so re-opening with a different policy updates
    /// the manifest instead of refusing.
    pub on_failure: Option<String>,
}

impl Manifest {
    /// The manifest of shard `index`/`count` of `spec` (use `(0, 1)`
    /// for an unsharded store). Captures the axes when expressible.
    pub fn for_spec(spec: &CampaignSpec, index: usize, count: usize) -> Manifest {
        assert!(count > 0 && index < count, "bad shard {index}/{count}");
        let jobs = spec.expand();
        Manifest {
            campaign: spec.name.clone(),
            fingerprint: fingerprint(&spec.name, &jobs),
            total_jobs: jobs.len(),
            shard_index: index,
            shard_count: count,
            axes: SpecAxes::of(spec),
            on_failure: None,
        }
    }

    /// The failure policy this manifest records (absent or unparsable
    /// labels mean the default, [`FailurePolicy::Abort`]).
    pub fn policy(&self) -> FailurePolicy {
        self.on_failure
            .as_deref()
            .and_then(FailurePolicy::parse)
            .unwrap_or(FailurePolicy::Abort)
    }

    fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"version\":2,\"campaign\":{},\"fingerprint\":\"{:016x}\",\
             \"total_jobs\":{},\"shard_index\":{},\"shard_count\":{}",
            json_str(&self.campaign),
            self.fingerprint,
            self.total_jobs,
            self.shard_index,
            self.shard_count
        );
        match &self.on_failure {
            None => s.push_str(",\"on_failure\":null"),
            Some(p) => {
                let _ = write!(s, ",\"on_failure\":{}", json_str(p));
            }
        }
        match &self.axes {
            None => s.push_str(",\"axes\":null"),
            Some(a) => {
                let _ = write!(s, ",\"axes\":{}", a.to_json());
            }
        }
        s.push_str("}\n");
        s
    }

    fn from_json(text: &str) -> io::Result<Manifest> {
        let v = parse_json(text)?;
        // Version 2 added the traffic/radio/failure axes (and axis
        // identity on record lines); older stores cannot be resumed by
        // this build — say so instead of failing on a missing key.
        let version = v.get("version")?.u64()?;
        if version != 2 {
            return Err(bad_data(format!(
                "store manifest version {version} is not supported by this build \
                 (expected 2); re-run the campaign into a fresh store or merge it \
                 with the binary that wrote it"
            )));
        }
        let fp_hex = v.get("fingerprint")?.str()?;
        let fingerprint = u64::from_str_radix(fp_hex, 16)
            .map_err(|_| bad_data(format!("bad fingerprint {fp_hex:?}")))?;
        let axes = match v.get("axes")? {
            JVal::Null => None,
            a => Some(SpecAxes::from_jval(a)?),
        };
        // Optional: version-2 manifests written before failure policies
        // existed simply lack the key, which means abort (the default).
        let on_failure = match v.get_opt("on_failure")? {
            None | Some(JVal::Null) => None,
            Some(p) => Some(p.str()?.to_owned()),
        };
        Ok(Manifest {
            campaign: v.get("campaign")?.str()?.to_owned(),
            fingerprint,
            total_jobs: v.get("total_jobs")?.usize()?,
            shard_index: v.get("shard_index")?.usize()?,
            shard_count: v.get("shard_count")?.usize()?,
            axes,
            on_failure,
        })
    }
}

// ---------------------------------------------------------------------
// The store.

/// One campaign shard's durable results. See the [module docs](self).
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    manifest: Manifest,
    completed: BTreeSet<usize>,
    failures: BTreeMap<usize, JobFailure>,
}

impl ResultStore {
    /// Opens (or creates) the store at `dir` for the campaign `manifest`
    /// describes.
    ///
    /// A fresh directory is initialised with the manifest. An existing
    /// one must carry the **same** manifest — same fingerprint, shard,
    /// and job count — otherwise the store refuses with
    /// [`io::ErrorKind::InvalidData`]: resuming a campaign under a
    /// different spec would silently mix incompatible records.
    /// Completed job ids are recovered from `records.jsonl`; a partial
    /// trailing line (the footprint of a killed process) is ignored.
    pub fn open(dir: impl AsRef<Path>, mut manifest: Manifest) -> io::Result<ResultStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            let existing = read_manifest(&manifest_path)?;
            if existing.fingerprint != manifest.fingerprint
                || existing.total_jobs != manifest.total_jobs
                || existing.shard_index != manifest.shard_index
                || existing.shard_count != manifest.shard_count
                || existing.campaign != manifest.campaign
            {
                return Err(bad_data(format!(
                    "store at {} belongs to campaign {:?} (fingerprint {:016x}, \
                     {} jobs, shard {}/{}) — refusing to resume campaign {:?} \
                     (fingerprint {:016x}, {} jobs, shard {}/{})",
                    dir.display(),
                    existing.campaign,
                    existing.fingerprint,
                    existing.total_jobs,
                    existing.shard_index,
                    existing.shard_count,
                    manifest.campaign,
                    manifest.fingerprint,
                    manifest.total_jobs,
                    manifest.shard_index,
                    manifest.shard_count,
                )));
            }
            // The failure policy is *state*, not identity: an explicit
            // policy on this open wins (and is persisted for the next
            // resume); `None` inherits whatever the store already runs
            // under.
            let effective = manifest.on_failure.clone().or_else(|| existing.on_failure.clone());
            manifest.on_failure = effective;
            if manifest.on_failure != existing.on_failure {
                write_atomic(&manifest_path, manifest.to_json().as_bytes())?;
            }
        } else {
            write_atomic(&manifest_path, manifest.to_json().as_bytes())?;
        }
        let mut store =
            ResultStore { dir, manifest, completed: BTreeSet::new(), failures: BTreeMap::new() };
        store.scan_completed()?;
        store.scan_failures()?;
        Ok(store)
    }

    /// Opens a store that already exists, trusting its on-disk manifest
    /// (the entry point for `merge`, which learns the campaign *from*
    /// the stores). Prefer [`ResultStore::open`] when the expected spec
    /// is known — it cross-checks the fingerprint.
    pub fn open_existing(dir: impl AsRef<Path>) -> io::Result<ResultStore> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = read_manifest(&dir.join(MANIFEST_FILE))?;
        let mut store =
            ResultStore { dir, manifest, completed: BTreeSet::new(), failures: BTreeMap::new() };
        store.scan_completed()?;
        store.scan_failures()?;
        Ok(store)
    }

    /// The manifest this store was opened with.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Global job ids with durable records.
    pub fn completed(&self) -> &BTreeSet<usize> {
        &self.completed
    }

    /// Contained job failures recorded in `failures.jsonl`, keyed by
    /// global job id. A failed job has no record, so it stays
    /// [`ResultStore::pending`] — resuming re-attempts exactly these;
    /// entries whose job has since completed are pruned on open.
    pub fn failures(&self) -> &BTreeMap<usize, JobFailure> {
        &self.failures
    }

    /// The failure policy this store runs under (from its manifest;
    /// absent means [`FailurePolicy::Abort`]).
    pub fn policy(&self) -> FailurePolicy {
        self.manifest.policy()
    }

    /// Re-scans `records.jsonl` for completed job ids. Unparsable
    /// content is tolerated only as the final line (a torn append from
    /// a killed writer); it is **truncated away** so the resumed
    /// writer's first append starts on a clean line. Corruption earlier
    /// in the file is an error.
    fn scan_completed(&mut self) -> io::Result<()> {
        self.completed.clear();
        let path = self.dir.join(RECORDS_FILE);
        if !path.exists() {
            return Ok(());
        }
        let text = std::fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.split('\n').collect();
        let mut good_bytes = 0u64;
        for (li, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                good_bytes += line.len() as u64 + 1;
                continue;
            }
            let torn_tail = li + 1 == lines.len(); // no trailing '\n': torn write
            match parse_json(line).and_then(|v| v.get("job")?.usize()) {
                Ok(id) if id < self.manifest.total_jobs => {
                    if !self.completed.insert(id) {
                        return Err(bad_data(format!(
                            "job {id} has more than one record in {} (line {}) — the \
                             store has been corrupted or merged with itself",
                            path.display(),
                            li + 1
                        )));
                    }
                    if torn_tail {
                        // The record is complete but the kill landed
                        // between its bytes and the newline: restore the
                        // terminator so the next append starts on a
                        // fresh line instead of gluing onto this one.
                        OpenOptions::new().append(true).open(&path)?.write_all(b"\n")?;
                    }
                    good_bytes += line.len() as u64 + 1;
                }
                Ok(id) => {
                    return Err(bad_data(format!(
                        "record for job {id} out of range ({} total)",
                        self.manifest.total_jobs
                    )))
                }
                Err(e) if torn_tail => {
                    // The killed writer's half-written last line: chop it
                    // off so the job re-runs and re-appends cleanly.
                    let _ = e;
                    OpenOptions::new().write(true).open(&path)?.set_len(good_bytes)?;
                }
                Err(e) => {
                    return Err(bad_data(format!(
                        "corrupt record line {} in {}: {e}",
                        li + 1,
                        path.display()
                    )))
                }
            }
        }
        Ok(())
    }

    /// Re-scans `failures.jsonl` for contained job failures. The file
    /// is an append-only log: a job may appear several times across
    /// interrupted runs (the last entry wins), and entries for jobs
    /// that have since completed are stale and dropped. Like the record
    /// scan, an unparsable *final* line is the torn tail of a killed
    /// writer and is truncated away; earlier corruption is an error.
    fn scan_failures(&mut self) -> io::Result<()> {
        self.failures.clear();
        let path = self.dir.join(FAILURES_FILE);
        if !path.exists() {
            return Ok(());
        }
        let text = std::fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.split('\n').collect();
        let mut good_bytes = 0u64;
        for (li, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                good_bytes += line.len() as u64 + 1;
                continue;
            }
            let torn_tail = li + 1 == lines.len();
            let parsed = parse_json(line).and_then(|v| {
                Ok(JobFailure {
                    job_id: v.get("job")?.usize()?,
                    attempts: v.get("attempts")?.u64()? as u32,
                    cause: v.get("cause")?.str()?.to_owned(),
                })
            });
            match parsed {
                Ok(f) => {
                    if torn_tail {
                        // Complete entry, missing only its newline:
                        // restore the terminator so the next append
                        // starts on a fresh line.
                        OpenOptions::new().append(true).open(&path)?.write_all(b"\n")?;
                    }
                    self.failures.insert(f.job_id, f);
                    good_bytes += line.len() as u64 + 1;
                }
                Err(_) if torn_tail => {
                    OpenOptions::new().write(true).open(&path)?.set_len(good_bytes)?;
                }
                Err(e) => {
                    return Err(bad_data(format!(
                        "corrupt failure line {} in {}: {e}",
                        li + 1,
                        path.display()
                    )))
                }
            }
        }
        let completed = &self.completed;
        self.failures.retain(|id, _| !completed.contains(id));
        Ok(())
    }

    /// This shard's jobs that still lack a durable record, in job order.
    pub fn pending(&self, shard_jobs: &[Job]) -> Vec<Job> {
        shard_jobs.iter().filter(|j| !self.completed.contains(&j.index)).cloned().collect()
    }

    /// `true` when every job of `shard_jobs` has a durable record.
    pub fn is_complete(&self, shard_jobs: &[Job]) -> bool {
        shard_jobs.iter().all(|j| self.completed.contains(&j.index))
    }

    /// Simulates every *missing* job of this shard on `scheduler` (a
    /// private [`crate::Executor`] or the shared [`crate::WorkerPool`]),
    /// appending each record durably (flushed per record) as it streams
    /// out in job order, and returns how many jobs actually ran.
    /// Already-completed jobs are skipped — calling this after an
    /// interruption finishes exactly the remainder. `limit` caps how
    /// many pending jobs run (used by the resume smoke test to simulate
    /// an interruption deterministically).
    ///
    /// `shard_jobs` must be this store's shard slice of the campaign
    /// (`CampaignSpec::shard(shard_index, shard_count)`).
    pub fn run<S: JobScheduler + ?Sized>(
        &mut self,
        scheduler: &S,
        shard_jobs: &[Job],
        limit: Option<usize>,
    ) -> io::Result<usize> {
        self.run_observed(scheduler, shard_jobs, limit, |_| {})
    }

    /// [`ResultStore::run`] with a completion observer: `observe(id)`
    /// fires on the scheduling thread immediately after job `id`'s
    /// record is durable (written and flushed), in job order. The serve
    /// daemon uses this to wake streaming subscribers the moment a
    /// record can be tailed from disk, without a second scan.
    pub fn run_observed<S: JobScheduler + ?Sized>(
        &mut self,
        scheduler: &S,
        shard_jobs: &[Job],
        limit: Option<usize>,
        observe: impl FnMut(usize),
    ) -> io::Result<usize> {
        let opts = RunOptions { limit, policy: self.policy(), cancel: None };
        let outcome = self.run_with(scheduler, shard_jobs, &opts, observe)?;
        Ok(outcome.ran + outcome.failed)
    }

    /// The policy-aware run path under [`ResultStore::run`] /
    /// [`ResultStore::run_observed`]: simulates this shard's missing
    /// jobs under `opts.policy`, appending each record durably in job
    /// order, logging contained failures to `failures.jsonl`, and
    /// honouring a cooperative cancel flag — when `opts.cancel` goes
    /// high, the in-flight durable record is finished, no further jobs
    /// are claimed, and the call returns cleanly with
    /// [`RunOutcome::cancelled`] set (resuming later runs exactly the
    /// remainder).
    ///
    /// A run that re-attempts an earlier session's recorded failures
    /// appends their records out of id order; it compacts
    /// `records.jsonl` back to ascending ids before returning, so the
    /// streaming merge's order invariant holds for every finished run.
    ///
    /// Failpoints: `store.flush` (per record append, hit-counted),
    /// `store.bookkeep` (between a record's durable append and its
    /// in-memory bookkeeping, matched on the job id).
    pub fn run_with<S: JobScheduler + ?Sized>(
        &mut self,
        scheduler: &S,
        shard_jobs: &[Job],
        opts: &RunOptions<'_>,
        mut observe: impl FnMut(usize),
    ) -> io::Result<RunOutcome> {
        let (idx, cnt) = (self.manifest.shard_index, self.manifest.shard_count);
        for j in shard_jobs {
            if j.index % cnt != idx {
                return Err(bad_data(format!(
                    "job {} does not belong to shard {idx}/{cnt}",
                    j.index
                )));
            }
        }
        let mut todo = self.pending(shard_jobs);
        if let Some(limit) = opts.limit {
            todo.truncate(limit);
        }
        if todo.is_empty() {
            return Ok(RunOutcome { ran: 0, failed: 0, cancelled: false });
        }
        // Re-attempting a job that a *previous* session recorded as
        // failed appends its record after later jobs' records. Readers
        // (streaming merge, the serve tailer) rely on ascending ids, so
        // such a run compacts the file back into id order afterwards.
        let fills_gap = self
            .completed
            .iter()
            .next_back()
            .is_some_and(|max| todo.first().is_some_and(|j| j.index < *max));
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(RECORDS_FILE))?;
        // The last byte offset known to end on a complete record: a
        // failed append truncates back here before any retry, so a
        // partial write can never corrupt an interior line.
        let mut good_len = file.metadata()?.len();
        let failures_path = self.dir.join(FAILURES_FILE);
        // Opened lazily: a fault-free campaign never creates the file.
        let mut failures_file: Option<File> = None;
        let completed = &mut self.completed;
        let failures = &mut self.failures;
        let mut line = String::new();
        let mut ran = 0usize;
        let mut failed = 0usize;
        let cancelled = std::cell::Cell::new(false);
        let cancel_after = |cancelled: &std::cell::Cell<bool>| -> io::Result<()> {
            if opts.cancel.is_some_and(|c| c.load(Ordering::SeqCst)) {
                cancelled.set(true);
                return Err(io::Error::new(io::ErrorKind::Interrupted, "shutdown requested"));
            }
            Ok(())
        };
        let mut on_record = |i: usize, record: &Record| {
            let id = todo[i].index;
            line.clear();
            record_line_into(&mut line, id, record);
            append_durable(&mut file, &mut good_len, line.as_bytes(), &opts.policy)?;
            // Chaos hook: a kill landing *between* the durable
            // record and the bookkeeping that follows it.
            eend_fail::io_guard_at("store.bookkeep", id as u64)?;
            completed.insert(id);
            ran += 1;
            observe(id);
            cancel_after(&cancelled)
        };
        let mut on_failure = |f: &JobFailure| {
            let fw = match failures_file.as_mut() {
                Some(fw) => fw,
                None => failures_file.insert(
                    OpenOptions::new().create(true).append(true).open(&failures_path)?,
                ),
            };
            // Failures are rare: a fresh buffer beats sharing the
            // record buffer across both closures.
            let mut fl = String::new();
            let _ = writeln!(
                fl,
                "{{\"job\":{},\"attempts\":{},\"cause\":{}}}",
                f.job_id,
                f.attempts,
                json_str(&f.cause)
            );
            fw.write_all(fl.as_bytes())?;
            failures.insert(f.job_id, f.clone());
            failed += 1;
            cancel_after(&cancelled)
        };
        let result = scheduler.run_jobs_streaming(
            &todo,
            scheduler.default_window(),
            &opts.policy,
            &mut on_record,
            &mut on_failure,
        );
        // A job that failed in an earlier session and succeeded in this
        // one leaves a stale failure entry; prune as open() would.
        let completed = &self.completed;
        self.failures.retain(|id, _| !completed.contains(id));
        drop(file);
        if fills_gap && ran > 0 && (result.is_ok() || cancelled.get()) {
            self.compact_records()?;
        }
        match result {
            Ok(()) => Ok(RunOutcome { ran, failed, cancelled: false }),
            Err(_) if cancelled.get() => Ok(RunOutcome { ran, failed, cancelled: true }),
            Err(e) => Err(e),
        }
    }

    /// Rewrites `records.jsonl` in ascending job-id order (atomically,
    /// temp + rename). Only needed after a run that filled a gap left
    /// by an earlier session's contained failure; fault-free stores are
    /// always appended in order and never pay this.
    fn compact_records(&self) -> io::Result<()> {
        let path = self.dir.join(RECORDS_FILE);
        let text = std::fs::read_to_string(&path)?;
        let mut entries: Vec<(usize, &str)> = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push((parse_json(line)?.get("job")?.usize()?, line));
        }
        entries.sort_by_key(|(id, _)| *id);
        let mut out = String::with_capacity(text.len());
        for (_, line) in entries {
            out.push_str(line);
            out.push('\n');
        }
        write_atomic(&path, out.as_bytes())
    }

    /// Loads every durable record's metrics, keyed by global job id.
    /// When `verify_against` is given (the full expansion), each
    /// record's stored stack name and seed are cross-checked against the
    /// job it claims to be.
    ///
    /// A parse failure is tolerated only on the file's final line — the
    /// newline-less footprint of a killed writer. Corruption anywhere
    /// else is an error naming the line: silently skipping an interior
    /// line would drop a completed job, and a subsequent resume would
    /// re-run it and append a duplicate. Duplicate job ids are refused
    /// for the same reason — last-wins would silently hide whichever
    /// record lost.
    pub fn load_metrics(
        &self,
        verify_against: Option<&[Job]>,
    ) -> io::Result<BTreeMap<usize, RunMetrics>> {
        let mut out = BTreeMap::new();
        let path = self.dir.join(RECORDS_FILE);
        if !path.exists() {
            return Ok(out);
        }
        let text = std::fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.split('\n').collect();
        for (li, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = match parse_json(line) {
                Ok(v) => v,
                // Only the last element of split('\n') can lack a
                // trailing newline — the torn tail of a killed writer.
                Err(_) if li + 1 == lines.len() => continue,
                Err(e) => {
                    return Err(bad_data(format!(
                        "corrupt record line {} in {}: {e}",
                        li + 1,
                        path.display()
                    )))
                }
            };
            let id = v.get("job")?.usize()?;
            if let Some(jobs) = verify_against {
                let job = jobs.get(id).ok_or_else(|| {
                    bad_data(format!("record for job {id} out of range ({} jobs)", jobs.len()))
                })?;
                verify_line_identity(&v, job)?;
            }
            let metrics = metrics_from_json(v.get("metrics")?)?;
            if out.insert(id, metrics).is_some() {
                return Err(bad_data(format!(
                    "job {id} has more than one record in {} (line {})",
                    path.display(),
                    li + 1
                )));
            }
        }
        Ok(out)
    }

    /// Reassembles this (unsharded) store into a [`CampaignResult`] —
    /// shorthand for [`merge_stores`] over one store. `jobs` must be the
    /// full expansion the store was created from.
    pub fn assemble(&self, jobs: &[Job]) -> io::Result<CampaignResult> {
        merge_stores(&[self], jobs)
    }
}

/// Options for [`ResultStore::run_with`].
#[derive(Debug, Default)]
pub struct RunOptions<'a> {
    /// Cap on how many pending jobs run (used by the resume smoke test
    /// to simulate an interruption deterministically).
    pub limit: Option<usize>,
    /// What a panicking job does to the run (and how many attempts a
    /// failing record append gets).
    pub policy: FailurePolicy,
    /// Cooperative cancellation: checked after every durable record, so
    /// a graceful shutdown finishes the in-flight record and stops.
    pub cancel: Option<&'a AtomicBool>,
}

/// What a [`ResultStore::run_with`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Jobs whose records were appended durably.
    pub ran: usize,
    /// Jobs whose panics the policy contained (logged to
    /// `failures.jsonl`; still pending for the next resume).
    pub failed: usize,
    /// The run stopped early because the cancel flag went high.
    pub cancelled: bool,
}

/// Reads and parses a store manifest, labelling unreadable content as
/// the probably-torn artefact it is rather than a bare parse error.
/// (New manifests are written via [`write_atomic`], so a torn manifest
/// means an older writer or a non-atomic filesystem was involved.)
fn read_manifest(path: &Path) -> io::Result<Manifest> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        io::Error::new(e.kind(), format!("no store manifest at {}: {e}", path.display()))
    })?;
    Manifest::from_json(&text).map_err(|e| {
        bad_data(format!(
            "store manifest at {} is unreadable: {e} — if this store was written by an \
             older build the manifest may be a torn write from a killed process; \
             re-create the store or restore the manifest from its shard peers",
            path.display()
        ))
    })
}

/// Appends one pre-rendered record line, retrying transient write
/// errors when `policy` allows and truncating the file back to
/// `good_len` before every retry so a partial append never corrupts an
/// interior line (the resume scan refuses interior corruption).
/// Failpoint: `store.flush`, hit-counted per append attempt.
fn append_durable(
    file: &mut File,
    good_len: &mut u64,
    bytes: &[u8],
    policy: &FailurePolicy,
) -> io::Result<()> {
    let attempts = policy.attempts();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let res = eend_fail::io_guard("store.flush").and_then(|()| file.write_all(bytes));
        match res {
            Ok(()) => {
                *good_len += bytes.len() as u64;
                return Ok(());
            }
            Err(e) => {
                // Roll back whatever partial bytes the failed attempt
                // may have landed.
                file.set_len(*good_len)?;
                if attempt >= attempts {
                    return Err(e);
                }
                let delay = policy.backoff_delay(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// Merges shard stores back into one in-order [`CampaignResult`].
///
/// All stores must carry the same fingerprint and job count as `jobs`
/// (the full expansion), and together they must cover every job exactly
/// once. Each record's stored stack name and seed are cross-checked
/// against the job list as defence in depth.
///
/// This is [`merge_stores_streaming`] into a [`crate::MemorySink`]; use
/// the streaming form directly when the merged records only need to be
/// rendered or aggregated, so the full result never materializes.
pub fn merge_stores(stores: &[&ResultStore], jobs: &[Job]) -> io::Result<CampaignResult> {
    let first = stores.first().ok_or_else(|| bad_data("no stores to merge"))?;
    let campaign = first.manifest.campaign.clone();
    let mut sink = crate::sink::MemorySink::new();
    merge_stores_streaming(stores, jobs, &mut sink)?;
    Ok(CampaignResult { campaign, records: sink.into_records() })
}

/// Streams the union of shard stores' records, in job order, into a
/// [`RecordSink`] — the engine under [`merge_stores`], `eend-cli
/// campaign merge --csv`, and the serve daemon's aggregate endpoint.
/// Unlike materializing a [`CampaignResult`], at most one parsed record
/// per store is held at a time (plus whatever the sink retains), so
/// grids larger than RAM still merge.
///
/// The integrity contract of [`merge_stores`] applies: every store must
/// carry the merged expansion's fingerprint and job count, every job
/// must be covered exactly once across the stores, and each record's
/// stored identity is cross-checked against the job it claims to be.
/// The single-pass merge additionally relies on — and enforces — the
/// order [`ResultStore::run`] writes: record ids strictly ascend within
/// each store, so a duplicated or reordered line is refused.
pub fn merge_stores_streaming(
    stores: &[&ResultStore],
    jobs: &[Job],
    sink: &mut dyn RecordSink,
) -> io::Result<()> {
    let first = stores.first().ok_or_else(|| bad_data("no stores to merge"))?;
    let campaign = first.manifest.campaign.clone();
    let fp = fingerprint(&campaign, jobs);
    for store in stores {
        let m = &store.manifest;
        if m.fingerprint != fp || m.total_jobs != jobs.len() || m.campaign != campaign {
            return Err(bad_data(format!(
                "store at {} (campaign {:?}, fingerprint {:016x}, {} jobs) does not \
                 match the expansion being merged (campaign {:?}, fingerprint {fp:016x}, \
                 {} jobs)",
                store.dir.display(),
                m.campaign,
                m.fingerprint,
                m.total_jobs,
                campaign,
                jobs.len(),
            )));
        }
    }
    let mut cursors = Vec::with_capacity(stores.len());
    for store in stores {
        let mut c = RecordCursor::open(store)?;
        c.advance()?;
        cursors.push(c);
    }
    for job in jobs {
        let mut found: Option<usize> = None;
        for (ci, c) in cursors.iter().enumerate() {
            if c.head.as_ref().map(|(id, _)| *id) == Some(job.index) {
                if found.is_some() {
                    return Err(bad_data(format!(
                        "job {} appears in more than one store",
                        job.index
                    )));
                }
                found = Some(ci);
            }
        }
        let Some(ci) = found else {
            return Err(bad_data(format!(
                "job {} ({}, seed {}) has no record in any store — campaign incomplete",
                job.index, job.point.stack.name, job.point.seed
            )));
        };
        let cursor = &mut cursors[ci];
        let (_, v) = cursor.head.take().expect("head id matched above");
        verify_line_identity(&v, job)?;
        let metrics = metrics_from_json(v.get("metrics")?)?;
        sink.accept(&Record { point: job.point.clone(), metrics })?;
        cursor.advance()?;
    }
    // Ascending order means any record the job loop never claimed is
    // still parked at some cursor's head: an out-of-range id.
    for c in &cursors {
        if let Some((id, _)) = &c.head {
            return Err(bad_data(format!(
                "record for job {id} in {} is outside the merged expansion ({} jobs)",
                c.path.display(),
                jobs.len()
            )));
        }
    }
    sink.finish()
}

/// A sequential, constant-memory reader over one store's record lines:
/// holds only the current parsed record, enforcing strictly ascending
/// job ids (the order [`ResultStore::run`] appends). A parse failure on
/// the final, newline-less line is the torn tail of a killed writer and
/// reads as end-of-file; anywhere else it is an error naming the line.
struct RecordCursor {
    reader: Option<BufReader<File>>,
    path: PathBuf,
    line_no: usize,
    last_id: Option<usize>,
    head: Option<(usize, JVal)>,
    buf: String,
}

impl RecordCursor {
    fn open(store: &ResultStore) -> io::Result<RecordCursor> {
        let path = store.dir.join(RECORDS_FILE);
        let reader = if path.exists() { Some(BufReader::new(File::open(&path)?)) } else { None };
        Ok(RecordCursor { reader, path, line_no: 0, last_id: None, head: None, buf: String::new() })
    }

    /// Reads the next record line into `head`, or leaves it `None` at
    /// end-of-file (a torn final line counts as end-of-file).
    fn advance(&mut self) -> io::Result<()> {
        self.head = None;
        let Some(reader) = self.reader.as_mut() else { return Ok(()) };
        loop {
            self.buf.clear();
            if reader.read_line(&mut self.buf)? == 0 {
                return Ok(());
            }
            self.line_no += 1;
            let torn_tail = !self.buf.ends_with('\n');
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            let v = match parse_json(line) {
                Ok(v) => v,
                Err(_) if torn_tail => return Ok(()),
                Err(e) => {
                    return Err(bad_data(format!(
                        "corrupt record line {} in {}: {e}",
                        self.line_no,
                        self.path.display()
                    )))
                }
            };
            let id = v.get("job")?.usize()?;
            if let Some(last) = self.last_id {
                if id <= last {
                    return Err(bad_data(format!(
                        "job {id} follows job {last} in {} (line {}) — records must \
                         strictly ascend within a store, so this line is a duplicate \
                         or the file has been reordered",
                        self.path.display(),
                        self.line_no
                    )));
                }
            }
            self.last_id = Some(id);
            self.head = Some((id, v));
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------
// Record (de)serialization.

fn energy_report_into(out: &mut String, r: &EnergyReport) {
    let _ = write!(
        out,
        "[{},{},{},{},{},{},{},{},{},{},{},{}]",
        json_num(r.idle_mj),
        json_num(r.sleep_mj),
        json_num(r.switch_mj),
        json_num(r.tx_data_mj),
        json_num(r.tx_ctrl_mj),
        json_num(r.rx_data_mj),
        json_num(r.rx_ctrl_mj),
        r.time_tx.as_nanos(),
        r.time_rx.as_nanos(),
        r.time_idle.as_nanos(),
        r.time_sleep.as_nanos(),
        r.wakeups
    );
}

fn energy_report_from(v: &JVal) -> io::Result<EnergyReport> {
    let a = v.arr()?;
    if a.len() != 12 {
        return Err(bad_data(format!("energy report needs 12 fields, got {}", a.len())));
    }
    Ok(EnergyReport {
        idle_mj: a[0].f64()?,
        sleep_mj: a[1].f64()?,
        switch_mj: a[2].f64()?,
        tx_data_mj: a[3].f64()?,
        tx_ctrl_mj: a[4].f64()?,
        rx_data_mj: a[5].f64()?,
        rx_ctrl_mj: a[6].f64()?,
        time_tx: SimDuration::from_nanos(a[7].u64()?),
        time_rx: SimDuration::from_nanos(a[8].u64()?),
        time_idle: SimDuration::from_nanos(a[9].u64()?),
        time_sleep: SimDuration::from_nanos(a[10].u64()?),
        wakeups: a[11].u64()?,
    })
}

/// Renders one store line: global job id, the point's identity
/// (cross-checked on merge), and the complete metrics. All f64s use
/// Rust's shortest-round-trip formatting, so parsing restores the exact
/// bit pattern and the reassembled result is byte-identical to an
/// in-memory run.
fn record_line_into(out: &mut String, id: usize, record: &Record) {
    let p = &record.point;
    let m = &record.metrics;
    let _ = write!(
        out,
        "{{\"job\":{id},\"stack\":{},\"seed\":{},\"traffic\":{},\"radio\":{},\"metrics\":{{",
        json_str(&p.stack.name),
        p.seed,
        json_str(&p.traffic),
        json_str(&p.radio)
    );
    let _ = write!(
        out,
        "\"data_sent\":{},\"data_delivered\":{},\"delivered_bits\":{},\
         \"drops_no_route\":{},\"drops_link_failure\":{},\"drops_buffer\":{},\
         \"drops_ifq\":{},\"rreq_tx\":{},\"rrep_tx\":{},\"rerr_tx\":{},\
         \"dsdv_update_tx\":{},\"atim_tx\":{},\"broadcast_collisions\":{},\
         \"rts_collisions\":{},\"link_failures\":{},\"data_forwarders\":{},\
         \"duration_s\":{}",
        m.data_sent,
        m.data_delivered,
        json_num(m.delivered_bits),
        m.drops_no_route,
        m.drops_link_failure,
        m.drops_buffer,
        m.drops_ifq,
        m.rreq_tx,
        m.rrep_tx,
        m.rerr_tx,
        m.dsdv_update_tx,
        m.atim_tx,
        m.broadcast_collisions,
        m.rts_collisions,
        m.link_failures,
        m.data_forwarders,
        json_num(m.duration_s)
    );
    out.push_str(",\"energy_total\":");
    energy_report_into(out, &m.energy_total);
    out.push_str(",\"per_node_energy\":[");
    for (i, r) in m.per_node_energy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        energy_report_into(out, r);
    }
    out.push_str("],\"routes\":[");
    for (i, route) in m.routes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match route {
            None => out.push_str("null"),
            Some(hops) => {
                out.push('[');
                for (k, h) in hops.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{h}");
                }
                out.push(']');
            }
        }
    }
    out.push_str("]}}\n");
}

pub(crate) fn metrics_from_json(v: &JVal) -> io::Result<RunMetrics> {
    Ok(RunMetrics {
        data_sent: v.get("data_sent")?.u64()?,
        data_delivered: v.get("data_delivered")?.u64()?,
        delivered_bits: v.get("delivered_bits")?.f64()?,
        drops_no_route: v.get("drops_no_route")?.u64()?,
        drops_link_failure: v.get("drops_link_failure")?.u64()?,
        drops_buffer: v.get("drops_buffer")?.u64()?,
        drops_ifq: v.get("drops_ifq")?.u64()?,
        rreq_tx: v.get("rreq_tx")?.u64()?,
        rrep_tx: v.get("rrep_tx")?.u64()?,
        rerr_tx: v.get("rerr_tx")?.u64()?,
        dsdv_update_tx: v.get("dsdv_update_tx")?.u64()?,
        atim_tx: v.get("atim_tx")?.u64()?,
        broadcast_collisions: v.get("broadcast_collisions")?.u64()?,
        rts_collisions: v.get("rts_collisions")?.u64()?,
        link_failures: v.get("link_failures")?.u64()?,
        per_node_energy: v
            .get("per_node_energy")?
            .arr()?
            .iter()
            .map(energy_report_from)
            .collect::<io::Result<_>>()?,
        energy_total: energy_report_from(v.get("energy_total")?)?,
        data_forwarders: v.get("data_forwarders")?.usize()?,
        routes: v
            .get("routes")?
            .arr()?
            .iter()
            .map(|r| match r {
                JVal::Null => Ok(None),
                _ => Ok(Some(r.arr()?.iter().map(|h| h.usize()).collect::<io::Result<_>>()?)),
            })
            .collect::<io::Result<_>>()?,
        duration_s: v.get("duration_s")?.f64()?,
    })
}

/// Cross-checks a stored line's identity against the job it claims to
/// be (used by the store tests; merge calls it per record).
pub(crate) fn verify_line_identity(v: &JVal, job: &Job) -> io::Result<()> {
    let stack = v.get("stack")?.str()?;
    let seed = v.get("seed")?.u64()?;
    let traffic = v.get("traffic")?.str()?;
    let radio = v.get("radio")?.str()?;
    let p = &job.point;
    if stack != p.stack.name || seed != p.seed || traffic != p.traffic || radio != p.radio {
        return Err(bad_data(format!(
            "record for job {} claims ({stack:?}, seed {seed}, traffic {traffic:?}, \
             radio {radio:?}) but the spec expands to ({:?}, seed {}, traffic {:?}, radio {:?})",
            job.index, p.stack.name, p.seed, p.traffic, p.radio
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Minimal JSON.

/// A parsed JSON value. Numbers keep their raw token so u64s round-trip
/// without an f64 detour and f64s restore their exact bit pattern.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JVal {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn type_name(&self) -> &'static str {
        match self {
            JVal::Null => "null",
            JVal::Bool(_) => "bool",
            JVal::Num(_) => "number",
            JVal::Str(_) => "string",
            JVal::Arr(_) => "array",
            JVal::Obj(_) => "object",
        }
    }

    pub(crate) fn get(&self, key: &str) -> io::Result<&JVal> {
        let JVal::Obj(pairs) = self else {
            return Err(bad_data(format!("expected object with {key:?}, got {}", self.type_name())));
        };
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| bad_data(format!("missing key {key:?}")))
    }

    /// Like [`JVal::get`], but a missing key reads as `None` (for keys
    /// added after files in the wild were written).
    pub(crate) fn get_opt(&self, key: &str) -> io::Result<Option<&JVal>> {
        let JVal::Obj(pairs) = self else {
            return Err(bad_data(format!("expected object with {key:?}, got {}", self.type_name())));
        };
        Ok(pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    pub(crate) fn str(&self) -> io::Result<&str> {
        match self {
            JVal::Str(s) => Ok(s),
            other => Err(bad_data(format!("expected string, got {}", other.type_name()))),
        }
    }

    pub(crate) fn arr(&self) -> io::Result<&[JVal]> {
        match self {
            JVal::Arr(a) => Ok(a),
            other => Err(bad_data(format!("expected array, got {}", other.type_name()))),
        }
    }

    pub(crate) fn u64(&self) -> io::Result<u64> {
        match self {
            JVal::Num(raw) => {
                raw.parse().map_err(|_| bad_data(format!("expected u64, got {raw:?}")))
            }
            other => Err(bad_data(format!("expected number, got {}", other.type_name()))),
        }
    }

    pub(crate) fn usize(&self) -> io::Result<usize> {
        self.u64().map(|v| v as usize)
    }

    pub(crate) fn f64(&self) -> io::Result<f64> {
        match self {
            JVal::Num(raw) => {
                raw.parse().map_err(|_| bad_data(format!("expected f64, got {raw:?}")))
            }
            other => Err(bad_data(format!("expected number, got {}", other.type_name()))),
        }
    }
}

/// Parses one complete JSON document (with nothing but whitespace
/// after it).
pub(crate) fn parse_json(text: &str) -> io::Result<JVal> {
    let mut p = JsonParser { s: text.as_bytes(), i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(bad_data(format!("trailing garbage at byte {}", p.i)));
    }
    Ok(v)
}

struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> io::Result<u8> {
        self.s.get(self.i).copied().ok_or_else(|| bad_data("unexpected end of JSON"))
    }

    fn eat(&mut self, b: u8) -> io::Result<()> {
        if self.peek()? == b {
            self.i += 1;
            Ok(())
        } else {
            Err(bad_data(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.i, self.peek()? as char
            )))
        }
    }

    fn lit(&mut self, word: &str, v: JVal) -> io::Result<JVal> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(bad_data(format!("bad literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> io::Result<JVal> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.lit("null", JVal::Null),
            b't' => self.lit("true", JVal::Bool(true)),
            b'f' => self.lit("false", JVal::Bool(false)),
            b'"' => Ok(JVal::Str(self.string()?)),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek()? == b']' {
                    self.i += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(JVal::Arr(items));
                        }
                        c => return Err(bad_data(format!("bad array separator {:?}", c as char))),
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.i += 1;
                    return Ok(JVal::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(JVal::Obj(pairs));
                        }
                        c => return Err(bad_data(format!("bad object separator {:?}", c as char))),
                    }
                }
            }
            c if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while self.i < self.s.len()
                    && matches!(self.s[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.i += 1;
                }
                let raw = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| bad_data("non-UTF8 number"))?;
                // Validate now so accessors can't hit un-number tokens.
                raw.parse::<f64>().map_err(|_| bad_data(format!("bad number {raw:?}")))?;
                Ok(JVal::Num(raw.to_owned()))
            }
            c => Err(bad_data(format!("unexpected {:?} at byte {}", c as char, self.i))),
        }
    }

    fn string(&mut self) -> io::Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek()?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek()?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.s.len() {
                                return Err(bad_data("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4])
                                .map_err(|_| bad_data("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| bad_data("bad \\u escape"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| bad_data("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(bad_data(format!("bad escape \\{}", e as char))),
                    }
                }
                _ => {
                    // Re-sync on UTF-8: walk back and take the full char.
                    let rest = std::str::from_utf8(&self.s[self.i - 1..])
                        .map_err(|_| bad_data("non-UTF8 string"))?;
                    let ch = rest.chars().next().ok_or_else(|| bad_data("empty char"))?;
                    self.i = self.i - 1 + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_the_writers() {
        let v = parse_json(r#"{"a":1,"b":[1.5,null,"x\"y\n"],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().u64().unwrap(), 1);
        let b = v.get("b").unwrap().arr().unwrap();
        assert_eq!(b[0].f64().unwrap(), 1.5);
        assert_eq!(b[1], JVal::Null);
        assert_eq!(b[2].str().unwrap(), "x\"y\n");
        assert!(matches!(v.get("c").unwrap().get("d").unwrap(), JVal::Bool(true)));
        assert!(parse_json("{\"a\":1} junk").is_err());
        assert!(parse_json("{").is_err());
    }

    #[test]
    fn json_numbers_keep_exact_tokens() {
        // u64 beyond 2^53 and a shortest-round-trip f64 both survive.
        let v = parse_json("[18446744073709551615,0.1,-2.5e-3]").unwrap();
        let a = v.arr().unwrap();
        assert_eq!(a[0].u64().unwrap(), u64::MAX);
        assert_eq!(a[1].f64().unwrap(), 0.1);
        assert_eq!(a[2].f64().unwrap(), -2.5e-3);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_axis() {
        use crate::{BaseScenario, CampaignSpec};
        use eend_wireless::stacks;
        let base = CampaignSpec::new("fp", BaseScenario::Small)
            .stacks(vec![stacks::titan_pc()])
            .rates(vec![2.0, 4.0])
            .seeds(2)
            .secs(30);
        let fp = |s: &CampaignSpec| fingerprint(&s.name, &s.expand());
        let reference = fp(&base);
        assert_eq!(reference, fp(&base.clone()), "deterministic");
        assert_ne!(reference, fp(&base.clone().rates(vec![2.0, 5.0])));
        assert_ne!(reference, fp(&base.clone().seeds(3)));
        assert_ne!(reference, fp(&base.clone().seed_base(7)));
        assert_ne!(reference, fp(&base.clone().secs(31)));
        assert_ne!(reference, fp(&base.clone().stacks(vec![stacks::dsr_active()])));
        assert_ne!(
            reference,
            fp(&base.clone().traffic(vec![eend_wireless::TrafficModel::Poisson])),
            "traffic axis must change the fingerprint"
        );
        assert_ne!(
            fp(&base.clone().traffic(vec![eend_wireless::TrafficModel::OnOffBurst {
                mean_on_s: 5.0,
                mean_off_s: 5.0
            }])),
            fp(&base.clone().traffic(vec![eend_wireless::TrafficModel::OnOffBurst {
                mean_on_s: 5.0,
                mean_off_s: 9.0
            }])),
            "on/off parameters must not collide"
        );
        assert_ne!(
            reference,
            fp(&base
                .clone()
                .radio_profiles(vec![eend_wireless::radio_profiles::mixed_hypo()])),
            "radio axis must change the fingerprint"
        );
        // Same failure label, different kill schedule: must differ too.
        let plan = |node| {
            crate::FailurePlan { label: "kill".to_owned(), kills: vec![(10.0, node)] }
        };
        assert_ne!(
            fp(&base.clone().failures(vec![plan(3)])),
            fp(&base.clone().failures(vec![plan(5)])),
            "kill schedules with identical labels must not collide"
        );
    }

    #[test]
    fn fingerprint_distinguishes_unnamed_card_mixes() {
        use crate::{BaseScenario, CampaignSpec};
        use eend_wireless::{presets, stacks, CardAssignment};
        // Two expand_with builders whose card mixes differ but share the
        // "custom" label: the fingerprint must still tell them apart.
        let spec = CampaignSpec::new("fp", BaseScenario::Small)
            .stacks(vec![stacks::titan_pc()])
            .rates(vec![4.0])
            .secs(20);
        let with_mix = |cards: Vec<eend_radio::RadioCard>| {
            spec.expand_with(move |p| {
                presets::small_network(p.stack.clone(), p.rate_kbps, p.seed)
                    .with_card_assignment(CardAssignment::Alternating(cards.clone()))
            })
        };
        let a = with_mix(vec![
            eend_radio::cards::cabletron(),
            eend_radio::cards::cabletron(),
            eend_radio::cards::cabletron(),
            eend_radio::cards::hypothetical_cabletron(),
        ]);
        let b = with_mix(vec![
            eend_radio::cards::cabletron(),
            eend_radio::cards::hypothetical_cabletron(),
            eend_radio::cards::hypothetical_cabletron(),
            eend_radio::cards::hypothetical_cabletron(),
        ]);
        assert_eq!(a[0].point.radio, "custom");
        assert_eq!(b[0].point.radio, "custom");
        assert_ne!(
            fingerprint("fp", &a),
            fingerprint("fp", &b),
            "identically-labelled card mixes must not collide"
        );
    }

    #[test]
    fn manifest_round_trips_with_and_without_axes() {
        use crate::{BaseScenario, CampaignSpec};
        use eend_wireless::stacks;
        let spec = CampaignSpec::new("mrt", BaseScenario::Density)
            .stacks(vec![stacks::titan_pc(), stacks::dsr_odpm_pc()])
            .node_counts(vec![300, 400])
            .traffic(vec![
                eend_wireless::TrafficModel::Cbr,
                eend_wireless::TrafficModel::OnOffBurst { mean_on_s: 2.5, mean_off_s: 7.5 },
            ])
            .radio_profiles(vec![
                eend_wireless::radio_profiles::uniform(),
                eend_wireless::radio_profiles::sparse_hypo(),
            ])
            .failures(vec![
                crate::FailurePlan::none(),
                crate::FailurePlan::kill("kill-relay", 60.5, 3),
            ])
            .seeds(2)
            .seed_base(10)
            .secs(45);
        let m = Manifest::for_spec(&spec, 1, 3);
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        let axes = back.axes.unwrap();
        let rebuilt = axes.to_spec("mrt").unwrap();
        assert_eq!(rebuilt, spec, "axes must rebuild the exact spec");

        let mut no_axes = Manifest::for_spec(&spec, 0, 1);
        no_axes.axes = None;
        assert_eq!(Manifest::from_json(&no_axes.to_json()).unwrap(), no_axes);

        let mut with_policy = Manifest::for_spec(&spec, 0, 1);
        with_policy.on_failure = Some("retry=3".to_owned());
        let back = Manifest::from_json(&with_policy.to_json()).unwrap();
        assert_eq!(back, with_policy);
        assert_eq!(back.policy(), FailurePolicy::retry(3));
    }

    #[test]
    fn manifests_without_a_policy_key_read_as_abort() {
        // Version-2 manifests written before PR 8 lack "on_failure":
        // they must still load, defaulting to the abort policy.
        let pre_pr8 = r#"{"version":2,"campaign":"old","fingerprint":"00000000000000aa",
            "total_jobs":4,"shard_index":0,"shard_count":1,"axes":null}"#;
        let m = Manifest::from_json(pre_pr8).unwrap();
        assert_eq!(m.on_failure, None);
        assert_eq!(m.policy(), FailurePolicy::Abort);
    }

    #[test]
    fn pre_axis_manifests_are_refused_with_a_version_message() {
        // A version-1 manifest (written before the traffic/radio/failure
        // axes existed) must fail with a version diagnosis, not an
        // opaque missing-key parse error.
        let v1 = r#"{"version":1,"campaign":"old","fingerprint":"00000000000000aa",
            "total_jobs":4,"shard_index":0,"shard_count":1,"axes":null}"#;
        let err = Manifest::from_json(v1).unwrap_err();
        assert!(err.to_string().contains("version 1"), "got: {err}");
        assert!(err.to_string().contains("not supported"), "got: {err}");
    }

    #[test]
    fn record_lines_round_trip_metrics_exactly() {
        use crate::{BaseScenario, CampaignSpec, Executor};
        use eend_wireless::stacks;
        let spec = CampaignSpec::new("rt", BaseScenario::Small)
            .stacks(vec![stacks::titan_pc()])
            .rates(vec![4.0])
            .seeds(1)
            .secs(20);
        let jobs = spec.expand();
        let records = Executor::with_workers(1).run_jobs(&jobs);
        let mut line = String::new();
        record_line_into(&mut line, jobs[0].index, &records[0]);
        let v = parse_json(line.trim_end()).unwrap();
        verify_line_identity(&v, &jobs[0]).unwrap();
        let back = metrics_from_json(v.get("metrics").unwrap()).unwrap();
        assert_eq!(back, records[0].metrics, "full RunMetrics must round-trip bit-exactly");
    }
}
