//! Record sinks: where streamed campaign records go.
//!
//! The streaming executor ([`crate::Executor::run_streaming`]) pushes
//! one [`Record`] at a time, in deterministic job order, into a
//! [`RecordSink`]. Sinks decide what to keep: everything
//! ([`MemorySink`] — the old collect-in-RAM behaviour), a CSV or JSONL
//! byte stream ([`CsvSink`], [`JsonlSink`] — O(1) memory however large
//! the grid), several of those at once ([`FanoutSink`]), or an
//! append-only on-disk store ([`crate::store::ResultStore`]).
//!
//! The CSV/JSONL writers render rows through the exact same functions
//! as the batch exports ([`crate::CampaignResult::to_csv`] /
//! [`to_json`](crate::CampaignResult::to_json)), so streaming a
//! campaign produces byte-identical output to collecting it first —
//! the property the streaming tests pin.

use crate::report::{csv_header_into, csv_row_into, json_row_into, Record};
use std::io::{self, Write};

/// A consumer of finished campaign records.
///
/// The executor calls [`RecordSink::accept`] exactly once per job, in
/// increasing job order (the reorder buffer guarantees this even under
/// parallel execution), then [`RecordSink::finish`] once after the last
/// record.
pub trait RecordSink {
    /// Consumes the next record (records arrive in job order).
    fn accept(&mut self, record: &Record) -> io::Result<()>;

    /// Flushes any buffered state once the stream ends.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects every record in memory — the classic
/// [`crate::Executor::run_jobs`] behaviour, as a sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The records accepted so far, in job order.
    pub records: Vec<Record>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

impl RecordSink for MemorySink {
    fn accept(&mut self, record: &Record) -> io::Result<()> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// Streams records as CSV (header + one row per record) into any
/// writer. The output is byte-identical to
/// [`crate::CampaignResult::to_csv`] over the same records.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    campaign: String,
    w: W,
    header_written: bool,
}

impl<W: Write> CsvSink<W> {
    /// A CSV sink labelling every row with `campaign`.
    pub fn new(campaign: &str, w: W) -> CsvSink<W> {
        CsvSink { campaign: campaign.to_owned(), w, header_written: false }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            self.header_written = true;
            let mut line = String::new();
            csv_header_into(&mut line);
            self.w.write_all(line.as_bytes())?;
        }
        Ok(())
    }
}

impl<W: Write> RecordSink for CsvSink<W> {
    fn accept(&mut self, record: &Record) -> io::Result<()> {
        // Chaos hook: the Kth emitted row errors. Emission happens on
        // the consumer thread in job order, so the count is
        // deterministic under any worker count.
        eend_fail::io_guard("sink.emit")?;
        self.ensure_header()?;
        let mut line = String::new();
        csv_row_into(&mut line, &self.campaign, record);
        self.w.write_all(line.as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        eend_fail::io_guard("sink.finish")?;
        // An empty campaign still gets its header, like to_csv().
        self.ensure_header()?;
        self.w.flush()
    }
}

/// Streams records as JSON Lines: one flat object per line, each
/// rendered by the same row writer as the elements of
/// [`crate::CampaignResult::to_json`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    campaign: String,
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// A JSONL sink labelling every object with `campaign`.
    pub fn new(campaign: &str, w: W) -> JsonlSink<W> {
        JsonlSink { campaign: campaign.to_owned(), w }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> RecordSink for JsonlSink<W> {
    fn accept(&mut self, record: &Record) -> io::Result<()> {
        eend_fail::io_guard("sink.emit")?;
        let mut line = String::new();
        json_row_into(&mut line, &self.campaign, record);
        line.push('\n');
        self.w.write_all(line.as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        eend_fail::io_guard("sink.finish")?;
        self.w.flush()
    }
}

/// Duplicates every record into several sinks (e.g. an on-disk store
/// plus a live CSV stream). Sinks are driven in order; on `accept` the
/// first error aborts the fan-out, but `finish` always reaches every
/// sink — one sink's failure must not leave the others unflushed — and
/// reports the first error afterward.
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn RecordSink>,
}

impl std::fmt::Debug for FanoutSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl<'a> FanoutSink<'a> {
    /// A fan-out over no sinks (records are dropped).
    pub fn new() -> FanoutSink<'a> {
        FanoutSink { sinks: Vec::new() }
    }

    /// Adds a sink to the fan-out.
    pub fn push(mut self, sink: &'a mut dyn RecordSink) -> FanoutSink<'a> {
        self.sinks.push(sink);
        self
    }
}

impl RecordSink for FanoutSink<'_> {
    fn accept(&mut self, record: &Record) -> io::Result<()> {
        for s in &mut self.sinks {
            s.accept(record)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        let mut first_err = None;
        for s in &mut self.sinks {
            if let Err(e) = s.finish() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaseScenario, CampaignSpec, Executor};
    use eend_wireless::stacks;

    fn tiny() -> crate::CampaignResult {
        let spec = CampaignSpec::new("sink", BaseScenario::Small)
            .stacks(vec![stacks::dsr_active()])
            .rates(vec![2.0, 4.0])
            .seeds(2)
            .secs(20);
        Executor::with_workers(2).run(&spec)
    }

    #[test]
    fn csv_sink_is_byte_identical_to_batch_export() {
        let res = tiny();
        let mut sink = CsvSink::new(&res.campaign, Vec::new());
        for r in &res.records {
            sink.accept(r).unwrap();
        }
        sink.finish().unwrap();
        assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), res.to_csv());
    }

    #[test]
    fn empty_csv_stream_still_has_a_header() {
        let mut sink = CsvSink::new("empty", Vec::new());
        sink.finish().unwrap();
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert!(out.starts_with("campaign,stack,"));
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn jsonl_lines_are_the_json_array_elements() {
        let res = tiny();
        let mut sink = JsonlSink::new(&res.campaign, Vec::new());
        for r in &res.records {
            sink.accept(r).unwrap();
        }
        sink.finish().unwrap();
        let jsonl = String::from_utf8(sink.into_inner()).unwrap();
        let array = res.to_json();
        for (i, line) in jsonl.lines().enumerate() {
            assert!(array.contains(line), "line {i} must appear in to_json()");
        }
        assert_eq!(jsonl.lines().count(), res.records.len());
    }

    #[test]
    fn fanout_finish_reaches_every_sink_despite_errors() {
        struct FailingFinish;
        impl RecordSink for FailingFinish {
            fn accept(&mut self, _: &Record) -> std::io::Result<()> {
                Ok(())
            }
            fn finish(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        struct Probe {
            finished: bool,
        }
        impl RecordSink for Probe {
            fn accept(&mut self, _: &Record) -> std::io::Result<()> {
                Ok(())
            }
            fn finish(&mut self) -> std::io::Result<()> {
                self.finished = true;
                Ok(())
            }
        }
        let mut bad = FailingFinish;
        let mut probe = Probe { finished: false };
        {
            let mut fan = FanoutSink::new().push(&mut bad).push(&mut probe);
            let err = fan.finish().unwrap_err();
            assert_eq!(err.to_string(), "disk full", "first error is reported");
        }
        assert!(probe.finished, "a sink after the failing one must still be flushed");
    }

    #[test]
    fn fanout_feeds_every_sink() {
        let res = tiny();
        let mut mem = MemorySink::new();
        let mut csv = CsvSink::new(&res.campaign, Vec::new());
        {
            let mut fan = FanoutSink::new().push(&mut mem).push(&mut csv);
            for r in &res.records {
                fan.accept(r).unwrap();
            }
            fan.finish().unwrap();
        }
        assert_eq!(mem.records, res.records);
        assert_eq!(String::from_utf8(csv.into_inner()).unwrap(), res.to_csv());
    }
}
