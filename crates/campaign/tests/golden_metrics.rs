//! Golden-metrics snapshots: the full [`RunMetrics`] of one
//! representative scenario per protocol-stack family is pinned to a
//! committed text file. Any accidental simulator behaviour drift — a
//! changed counter, a reordered event, a different f64 in any per-node
//! energy report — fails loudly with a line diff.
//!
//! Regenerate after an *intentional* behaviour change with:
//!
//! ```text
//! EEND_BLESS=1 cargo test -p eend-campaign --test golden_metrics
//! ```
//!
//! and review the diff like any other code change. The simulator is
//! pure integer/f64 arithmetic off a seeded RNG, so these renderings are
//! stable across runs and machines building with the same std.

use eend_sim::SimDuration;
use eend_wireless::{presets, stacks, ProtocolStack, Simulator};
use std::path::PathBuf;

/// One pinned scenario per stack family: reactive hop-count (DSR),
/// TITAN backbone bias, power-aware reactive (MTPR+), joint-metric
/// reactive (DSRH), and proactive distance-vector (DSDVH).
fn families() -> Vec<(&'static str, ProtocolStack)> {
    vec![
        ("dsr_active", stacks::dsr_active()),
        ("titan_pc", stacks::titan_pc()),
        ("mtpr_plus", stacks::mtpr(true)),
        ("dsrh_odpm_rate", stacks::dsrh_odpm(true)),
        ("dsdvh_odpm_psm", stacks::dsdvh_odpm()),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn render(name: &str, stack: &ProtocolStack) -> String {
    // The paper's small-network scenario, shortened past the 20–25 s
    // traffic start so every family moves real data.
    let mut scenario = presets::small_network(stack.clone(), 4.0, 7);
    scenario.duration = SimDuration::from_secs(40);
    let metrics = Simulator::new(&scenario).run();
    assert!(metrics.data_sent > 0, "{name}: scenario generated no traffic; snapshot is vacuous");
    format!("{metrics:#?}\n")
}

fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first difference at line {}:\n  golden: {la}\n  actual: {lb}", i + 1);
        }
    }
    format!("line counts differ: golden {} vs actual {}", a.lines().count(), b.lines().count())
}

#[test]
fn run_metrics_match_golden_snapshots() {
    let bless = std::env::var_os("EEND_BLESS").is_some();
    let mut failures = Vec::new();
    for (name, stack) in families() {
        let actual = render(name, &stack);
        let path = golden_path(name);
        if bless {
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden file {} ({e}); run with EEND_BLESS=1 to create it", path.display())
        });
        if golden != actual {
            failures.push(format!("{name}: {}", first_diff(&golden, &actual)));
        }
    }
    assert!(
        failures.is_empty(),
        "simulator behaviour drifted from pinned RunMetrics \
         (EEND_BLESS=1 regenerates after an intentional change):\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_snapshots_cover_every_stack_family() {
    // The five families partition `stacks::all()` by routing/metric kind;
    // keep the snapshot set honest if new families appear.
    let names: Vec<&str> = families().iter().map(|(n, _)| *n).collect();
    assert_eq!(names.len(), 5);
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate family snapshot");
}
