//! Golden-metrics snapshots: the full [`RunMetrics`] of one
//! representative scenario per protocol-stack family is pinned to a
//! committed text file. Any accidental simulator behaviour drift — a
//! changed counter, a reordered event, a different f64 in any per-node
//! energy report — fails loudly with a line diff.
//!
//! Regenerate after an *intentional* behaviour change with:
//!
//! ```text
//! EEND_BLESS=1 cargo test -p eend-campaign --test golden_metrics
//! ```
//!
//! and review the diff like any other code change. The simulator is
//! pure integer/f64 arithmetic off a seeded RNG, so these renderings are
//! stable across runs and machines building with the same std.

use eend_sim::SimDuration;
use eend_wireless::{
    presets, radio_profiles, stacks, CardAssignment, ProtocolStack, Scenario, Simulator,
    TrafficModel,
};
use std::path::PathBuf;

/// One pinned scenario per stack family: reactive hop-count (DSR),
/// TITAN backbone bias, power-aware reactive (MTPR+), joint-metric
/// reactive (DSRH), and proactive distance-vector (DSDVH).
fn families() -> Vec<(&'static str, ProtocolStack)> {
    vec![
        ("dsr_active", stacks::dsr_active()),
        ("titan_pc", stacks::titan_pc()),
        ("mtpr_plus", stacks::mtpr(true)),
        ("dsrh_odpm_rate", stacks::dsrh_odpm(true)),
        ("dsdvh_odpm_psm", stacks::dsdvh_odpm()),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn render(name: &str, stack: &ProtocolStack) -> String {
    // The paper's small-network scenario, shortened past the 20–25 s
    // traffic start so every family moves real data.
    let mut scenario = presets::small_network(stack.clone(), 4.0, 7);
    scenario.duration = SimDuration::from_secs(40);
    let metrics = Simulator::new(&scenario).run();
    assert!(metrics.data_sent > 0, "{name}: scenario generated no traffic; snapshot is vacuous");
    format!("{metrics:#?}\n")
}

fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first difference at line {}:\n  golden: {la}\n  actual: {lb}", i + 1);
        }
    }
    format!("line counts differ: golden {} vs actual {}", a.lines().count(), b.lines().count())
}

fn check_snapshots(snapshots: Vec<(String, String)>) {
    let bless = std::env::var_os("EEND_BLESS").is_some();
    let mut failures = Vec::new();
    for (name, actual) in snapshots {
        let path = golden_path(&name);
        if bless {
            std::fs::write(&path, &actual).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden file {} ({e}); run with EEND_BLESS=1 to create it", path.display())
        });
        if golden != actual {
            failures.push(format!("{name}: {}", first_diff(&golden, &actual)));
        }
    }
    assert!(
        failures.is_empty(),
        "simulator behaviour drifted from pinned RunMetrics \
         (EEND_BLESS=1 regenerates after an intentional change):\n{}",
        failures.join("\n")
    );
}

#[test]
fn run_metrics_match_golden_snapshots() {
    check_snapshots(
        families().into_iter().map(|(name, stack)| (name.to_owned(), render(name, &stack))).collect(),
    );
}

/// The scenario-diversity matrix: {Poisson, on/off burst} × {homogeneous,
/// mixed-card} cells of the same shortened small-network scenario the
/// stack-family snapshots pin. Every cell's full `RunMetrics` rendering
/// is blessed to a committed file, so traffic-model or heterogeneous-
/// radio behaviour can only drift loudly.
fn diversity_matrix() -> Vec<(String, Scenario)> {
    let models = [
        ("poisson", TrafficModel::Poisson),
        ("onoff", TrafficModel::OnOffBurst { mean_on_s: 5.0, mean_off_s: 5.0 }),
    ];
    let radios = [
        ("uniform", CardAssignment::Uniform),
        ("mixed", radio_profiles::mixed_hypo().assignment),
    ];
    let mut out = Vec::new();
    for (mname, model) in &models {
        for (rname, assignment) in &radios {
            let mut scenario = presets::small_network(stacks::titan_pc(), 4.0, 7)
                .with_card_assignment(assignment.clone());
            scenario.flows = scenario.flows.with_model(model.clone());
            scenario.duration = SimDuration::from_secs(40);
            out.push((format!("traffic_{mname}_{rname}"), scenario));
        }
    }
    out
}

#[test]
fn traffic_and_radio_matrix_matches_golden_snapshots() {
    check_snapshots(
        diversity_matrix()
            .into_iter()
            .map(|(name, scenario)| {
                let metrics = Simulator::new(&scenario).run();
                assert!(metrics.data_sent > 0, "{name}: no traffic; snapshot is vacuous");
                (name, format!("{metrics:#?}\n"))
            })
            .collect(),
    );
}

/// The CBR regression pin (no `EEND_BLESS` involved): the traffic-model
/// refactor routed the paper's workload through `TrafficModel::Cbr`,
/// and this asserts — at runtime, against the same scenario the golden
/// files pin — that the default construction, an explicitly-set CBR
/// model, and the builder spelling are all the *same* path producing
/// identical `RunMetrics`. Together with the untouched committed
/// snapshots above, this pins CBR as byte-identical to the
/// pre-refactor `FlowSpec` implementation.
#[test]
fn cbr_model_is_the_default_path_with_identical_metrics() {
    let mut default_scenario = presets::small_network(stacks::titan_pc(), 4.0, 7);
    default_scenario.duration = SimDuration::from_secs(40);
    assert_eq!(default_scenario.flows.model, TrafficModel::Cbr, "CBR must stay the default");

    let mut explicit = default_scenario.clone();
    explicit.flows.model = TrafficModel::Cbr;
    let mut via_builder = default_scenario.clone();
    via_builder.flows = via_builder.flows.with_model(TrafficModel::Cbr);

    let reference = Simulator::new(&default_scenario).run();
    assert_eq!(Simulator::new(&explicit).run(), reference);
    assert_eq!(Simulator::new(&via_builder).run(), reference);
    // And the uniform card assignment is likewise the identity.
    let uniform = default_scenario.clone().with_card_assignment(CardAssignment::Uniform);
    assert_eq!(Simulator::new(&uniform).run(), reference);
}

#[test]
fn golden_snapshots_cover_every_stack_family() {
    // The five families partition `stacks::all()` by routing/metric kind;
    // keep the snapshot set honest if new families appear.
    let names: Vec<&str> = families().iter().map(|(n, _)| *n).collect();
    assert_eq!(names.len(), 5);
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate family snapshot");
}
