//! The shared-pool scheduler's cornerstone invariant, as a property:
//! **K campaigns run concurrently on one [`WorkerPool`] produce
//! per-store `records.jsonl` files byte-identical to their solo serial
//! runs**, no matter how jobs interleave across campaigns.
//!
//! Each proptest case draws a pool size, a campaign count, and a
//! distinct grid shape per campaign (so job lists differ in length and
//! content), runs every campaign solo on a 1-worker [`Executor`] as the
//! reference, then re-runs them all concurrently — one consumer thread
//! per campaign, staggered by drawn delays to vary the registration
//! order — against one shared pool, and diffs the stores byte for byte.
//! Thread-scheduler nondeterminism on top of the drawn parameters is
//! the "randomized worker schedule" part: every case exercises a fresh
//! interleaving.

use eend_campaign::store::Manifest;
use eend_campaign::{
    BaseScenario, CampaignSpec, Executor, FailurePolicy, ResultStore, RunOptions, WorkerPool,
};
use eend_wireless::stacks;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique scratch directory per test invocation (no tempfile dep).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eend-conc-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Campaign `i` of a case: shape varies with the index so concurrent
/// job lists differ in length, stacks, and rates.
fn case_spec(case: u64, i: usize, seeds: u64) -> CampaignSpec {
    let stacks = if i.is_multiple_of(2) {
        vec![stacks::titan_pc()]
    } else {
        vec![stacks::titan_pc(), stacks::dsr_active()]
    };
    CampaignSpec::new(&format!("conc-{case}-{i}"), BaseScenario::Small)
        .stacks(stacks)
        .rates(if i.is_multiple_of(3) { vec![2.0, 4.0] } else { vec![4.0] })
        .seeds(seeds + i as u64 % 2)
        .secs(10 + 5 * (i as u64 % 2))
}

/// Runs `spec` to completion in `dir` on `scheduler` and returns the
/// store's raw `records.jsonl` bytes.
fn run_into(
    scheduler: &(impl eend_campaign::JobScheduler + ?Sized),
    spec: &CampaignSpec,
    dir: &PathBuf,
) -> std::io::Result<Vec<u8>> {
    let jobs = spec.expand();
    let mut store = ResultStore::open(dir, Manifest::for_spec(spec, 0, 1))?;
    let opts = RunOptions { limit: None, policy: FailurePolicy::Abort, cancel: None };
    store.run_with(scheduler, &jobs, &opts, |_| {})?;
    std::fs::read(dir.join("records.jsonl"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_campaigns_match_their_solo_runs_byte_for_byte(
        case in 0u64..10_000,
        workers in 1usize..5,
        k in 2usize..5,
        seeds in 2u64..4,
        stagger_ms in 0u64..4,
    ) {
        let specs: Vec<CampaignSpec> = (0..k).map(|i| case_spec(case, i, seeds)).collect();

        // Solo serial references, one store per campaign.
        let solo: Vec<Vec<u8>> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                run_into(&Executor::with_workers(1), spec, &scratch(&format!("solo-{i}")))
                    .expect("solo run")
            })
            .collect();

        // The same campaigns, concurrently, all on one shared pool.
        let pool = WorkerPool::new(workers);
        let concurrent: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    let pool = &pool;
                    let dir = scratch(&format!("conc-{i}"));
                    scope.spawn(move || {
                        // Stagger registrations so claim interleavings
                        // differ across campaigns and cases.
                        std::thread::sleep(Duration::from_millis(stagger_ms * i as u64));
                        run_into(pool, spec, &dir).expect("concurrent run")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("campaign thread")).collect()
        });
        prop_assert_eq!(pool.active_tasks(), 0, "all tasks must deregister");

        for (i, (solo_bytes, conc_bytes)) in solo.iter().zip(&concurrent).enumerate() {
            prop_assert!(
                solo_bytes == conc_bytes,
                "campaign {i}: records.jsonl differs between solo ({} bytes) and \
                 concurrent ({} bytes) runs",
                solo_bytes.len(),
                conc_bytes.len()
            );
            prop_assert!(!solo_bytes.is_empty(), "campaign {i}: empty records.jsonl");
        }
    }
}
