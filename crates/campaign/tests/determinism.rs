//! Parallel-equals-serial: the executor's core contract. The same
//! [`CampaignSpec`] executed with 1 worker and with N workers must
//! produce identical result records in identical order — field-wise
//! equal *and* rendering byte-identically, for every export format.

use eend_campaign::{BaseScenario, CampaignSpec, Executor, FailurePlan};
use eend_wireless::stacks;

fn spec() -> CampaignSpec {
    CampaignSpec::new("determinism", BaseScenario::Small)
        .stacks(vec![stacks::titan_pc(), stacks::dsdvh_odpm()])
        .rates(vec![2.0, 4.0])
        .speeds(vec![0.0, 3.0])
        .seeds(2)
        .secs(30)
}

#[test]
fn parallel_equals_serial_across_worker_counts() {
    let spec = spec();
    let serial = Executor::with_workers(1).run(&spec);
    assert_eq!(serial.records.len(), spec.job_count());
    assert_eq!(serial.records.len(), 16);
    assert!(
        serial.records.iter().any(|r| r.metrics.data_sent > 0),
        "no traffic anywhere; the comparison would be vacuous"
    );

    for workers in [2, 3, 8] {
        let parallel = Executor::with_workers(workers).run(&spec);
        assert_eq!(serial, parallel, "records differ at {workers} workers");
        // Debug prints every f64 digit-exactly: as close to byte-identity
        // as the public API gets.
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "records render differently at {workers} workers"
        );
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}

#[test]
fn failure_injection_is_deterministic_too() {
    let spec = CampaignSpec::new("failures", BaseScenario::Small)
        .stacks(vec![stacks::dsr_odpm_pc()])
        .rates(vec![4.0])
        .failures(vec![FailurePlan::none(), FailurePlan::kill("kill-3@10s", 10.0, 3)])
        .seeds(2)
        .secs(30);
    let a = Executor::with_workers(1).run(&spec);
    let b = Executor::with_workers(4).run(&spec);
    assert_eq!(a, b);
    assert_eq!(a.records.len(), 4);
    assert_eq!(a.records[2].point.failure, "kill-3@10s");
}

#[test]
fn bounded_executor_matches_explicit_worker_counts() {
    // Executor::bounded() (available_parallelism) is just another worker
    // count: same records as the serial reference.
    let spec = CampaignSpec::new("bounded", BaseScenario::Small)
        .stacks(vec![stacks::dsr_active()])
        .rates(vec![4.0])
        .seeds(3)
        .secs(30);
    assert_eq!(Executor::with_workers(1).run(&spec), Executor::bounded().run(&spec));
}
