//! The streaming pipeline's durability contracts:
//!
//! 1. an interrupted campaign resumed from its on-disk store reassembles
//!    **byte-identically** to a one-shot in-memory serial run;
//! 2. shard stores produced on independent "machines" merge back into
//!    the byte-identical unsharded result;
//! 3. a store refuses to resume under a different spec (fingerprint
//!    check).

use eend_campaign::store::Manifest;
use eend_campaign::{
    merge_stores, merge_stores_streaming, BaseScenario, CampaignSpec, CsvSink, Executor,
    FailurePlan, ResultStore,
};
use eend_wireless::{radio_profiles, stacks, TrafficModel};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test invocation (no tempfile dep).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eend-store-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::new("durability", BaseScenario::Small)
        .stacks(vec![stacks::titan_pc(), stacks::dsr_active()])
        .rates(vec![2.0, 4.0])
        .seeds(2)
        .secs(20)
}

#[test]
fn interrupted_then_resumed_equals_one_shot() {
    let spec = spec();
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 8);
    let one_shot = Executor::with_workers(1).run(&spec);

    let dir = scratch("resume");
    let manifest = Manifest::for_spec(&spec, 0, 1);

    // "Machine" run 1: killed after 3 jobs (the limit models the kill
    // deterministically), plus a torn final line from the dying writer.
    {
        let mut store = ResultStore::open(&dir, manifest.clone()).unwrap();
        let ran = store.run(&Executor::with_workers(2), &jobs, Some(3)).unwrap();
        assert_eq!(ran, 3);
    }
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("records.jsonl"))
            .unwrap();
        write!(f, "{{\"job\":7,\"stack\":\"TIT").unwrap(); // no newline: torn
    }

    // Run 2: re-open, verify only the 3 durable jobs count as done,
    // finish the rest in parallel.
    {
        let mut store = ResultStore::open(&dir, manifest.clone()).unwrap();
        assert_eq!(store.completed().len(), 3, "torn line must not count as completed");
        let ran = store.run(&Executor::with_workers(4), &jobs, None).unwrap();
        assert_eq!(ran, 5);
        assert!(store.is_complete(&jobs));

        let assembled = store.assemble(&jobs).unwrap();
        assert_eq!(assembled, one_shot);
        assert_eq!(format!("{assembled:?}"), format!("{one_shot:?}"));
        assert_eq!(assembled.to_csv(), one_shot.to_csv(), "CSV must be byte-identical");
        assert_eq!(assembled.to_json(), one_shot.to_json(), "JSON must be byte-identical");

        // Idempotence: running again does nothing.
        assert_eq!(store.run(&Executor::bounded(), &jobs, None).unwrap(), 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_stores_merge_to_the_unsharded_result() {
    let spec = spec();
    let jobs = spec.expand();
    let one_shot = Executor::with_workers(1).run(&spec);

    let shards = 3;
    let dirs: Vec<PathBuf> = (0..shards).map(|i| scratch(&format!("shard{i}"))).collect();
    let mut stores = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        // Each "machine" runs its slice with a different worker count —
        // merge order and determinism must not care.
        let shard_jobs = spec.shard(i, shards);
        let mut store = ResultStore::open(dir, Manifest::for_spec(&spec, i, shards)).unwrap();
        store.run(&Executor::with_workers(i + 1), &shard_jobs, None).unwrap();
        assert!(store.is_complete(&shard_jobs));
        stores.push(store);
    }

    let refs: Vec<&ResultStore> = stores.iter().collect();
    let merged = merge_stores(&refs, &jobs).unwrap();
    assert_eq!(merged, one_shot);
    assert_eq!(merged.to_csv(), one_shot.to_csv());
    assert_eq!(merged.to_json(), one_shot.to_json());

    // A missing shard is an incomplete campaign, loudly.
    let partial: Vec<&ResultStore> = stores.iter().take(shards - 1).collect();
    let err = merge_stores(&partial, &jobs).unwrap_err();
    assert!(err.to_string().contains("no record"), "got: {err}");

    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn complete_record_missing_its_newline_still_resumes_cleanly() {
    // The other torn-write shape: the kill landed *between* the record's
    // bytes and its newline, so the last line is complete JSON with no
    // terminator. The store must count it as done AND restore the
    // newline, or the resumed writer's first append would glue onto it.
    let spec = spec();
    let jobs = spec.expand();
    let one_shot = Executor::with_workers(1).run(&spec);
    let dir = scratch("noeol");
    let manifest = Manifest::for_spec(&spec, 0, 1);
    {
        let mut store = ResultStore::open(&dir, manifest.clone()).unwrap();
        store.run(&Executor::with_workers(1), &jobs, Some(3)).unwrap();
    }
    let path = dir.join("records.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.ends_with('\n'));
    std::fs::write(&path, text.trim_end_matches('\n')).unwrap(); // chop the last '\n'
    {
        let mut store = ResultStore::open(&dir, manifest).unwrap();
        assert_eq!(store.completed().len(), 3, "the complete record still counts");
        store.run(&Executor::with_workers(2), &jobs, None).unwrap();
        let assembled = store.assemble(&jobs).unwrap();
        assert_eq!(assembled.to_csv(), one_shot.to_csv());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A spec exercising every new scenario-diversity axis at once: failure
/// plans + non-CBR traffic + a mixed-card radio profile.
fn mixed_axis_spec() -> CampaignSpec {
    CampaignSpec::new("diversity", BaseScenario::Small)
        .stacks(vec![stacks::titan_pc()])
        .rates(vec![4.0])
        .traffic(vec![TrafficModel::Poisson, TrafficModel::OnOffBurst {
            mean_on_s: 5.0,
            mean_off_s: 5.0,
        }])
        .radio_profiles(vec![radio_profiles::mixed_hypo()])
        .failures(vec![FailurePlan::none(), FailurePlan::kill("kill-3", 10.0, 3)])
        .seeds(2)
        .secs(20)
}

#[test]
fn mixed_axis_store_round_trips_resumes_and_refuses_axis_drift() {
    let spec = mixed_axis_spec();
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 8, "2 traffic x 2 failures x 2 seeds");
    let one_shot = Executor::with_workers(1).run(&spec);

    let dir = scratch("mixedaxis");
    let manifest = Manifest::for_spec(&spec, 0, 1);
    // The manifest must carry the full axes — SpecAxes no longer refuses
    // failure plans — and rebuild the exact spec from disk.
    let axes = manifest.axes.clone().expect("mixed-axis spec must be manifest-expressible");
    assert_eq!(axes.traffic, ["poisson", "onoff(5,5)"]);
    assert_eq!(axes.radio, ["mixed-hypo"]);
    assert_eq!(axes.failures.len(), 2);
    assert_eq!(axes.failures[1].kills, [(10.0, 3)]);
    assert_eq!(axes.to_spec("diversity").unwrap(), spec, "axes must rebuild the exact spec");

    // Interrupt after 3 jobs, then resume from the on-disk manifest's
    // own axes (as a second machine would) and finish.
    {
        let mut store = ResultStore::open(&dir, manifest.clone()).unwrap();
        assert_eq!(store.run(&Executor::with_workers(2), &jobs, Some(3)).unwrap(), 3);
    }
    {
        let store = ResultStore::open_existing(&dir).unwrap();
        let rebuilt = store.manifest().axes.clone().unwrap().to_spec("diversity").unwrap();
        assert_eq!(rebuilt, spec);
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&rebuilt, 0, 1)).unwrap();
        assert_eq!(store.completed().len(), 3);
        store.run(&Executor::with_workers(3), &jobs, None).unwrap();
        let assembled = store.assemble(&jobs).unwrap();
        assert_eq!(assembled, one_shot);
        assert_eq!(assembled.to_csv(), one_shot.to_csv(), "CSV must be byte-identical");
    }

    // Any drift in the new axes must be refused: different traffic
    // model, different radio profile, different kill schedule under the
    // same label.
    let drifted: [CampaignSpec; 3] = [
        mixed_axis_spec().traffic(vec![TrafficModel::Poisson, TrafficModel::Cbr]),
        mixed_axis_spec().radio_profiles(vec![radio_profiles::sparse_hypo()]),
        mixed_axis_spec()
            .failures(vec![FailurePlan::none(), FailurePlan::kill("kill-3", 10.0, 5)]),
    ];
    for (i, other) in drifted.iter().enumerate() {
        let err = ResultStore::open(&dir, Manifest::for_spec(other, 0, 1)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "axis drift {i}");
        assert!(err.to_string().contains("refusing to resume"), "axis drift {i}: {err}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_refuses_a_different_spec() {
    let dir = scratch("fingerprint");
    let original = spec();
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&original, 0, 1)).unwrap();
        store.run(&Executor::with_workers(2), &original.expand(), Some(1)).unwrap();
    }
    // Same campaign name, different grid: the fingerprint must differ
    // and the store must refuse.
    let other = spec().rates(vec![2.0, 6.0]);
    let err = ResultStore::open(&dir, Manifest::for_spec(&other, 0, 1)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("refusing to resume"), "got: {err}");

    // The original spec still opens and remembers its progress.
    let store = ResultStore::open(&dir, Manifest::for_spec(&original, 0, 1)).unwrap();
    assert_eq!(store.completed().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_interior_line_is_an_error_not_a_torn_tail() {
    // Only the FINAL line of records.jsonl may fail to parse (a torn
    // write from a kill). Garbage anywhere else means the store is
    // damaged, and silently dropping the rest of the file would resurrect
    // the pre-fix behaviour where every record after the corruption was
    // re-run or lost.
    let spec = spec();
    let jobs = spec.expand();
    let dir = scratch("interior");
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        store.run(&Executor::with_workers(2), &jobs, None).unwrap();
        assert!(store.is_complete(&jobs));
    }
    let path = dir.join("records.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 8);

    // Smash line 3 (index 2) into non-JSON, keeping the trailing newline.
    lines[2] = "{\"job\":2,\"stack\":";
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    // Both the scan on open and the bulk loader must name the bad line.
    let err = ResultStore::open_existing(&dir).unwrap_err();
    assert!(err.to_string().contains("line 3"), "open_existing: {err}");

    // A torn FINAL line is still tolerated: rebuild the file as two good
    // records plus a truncated third.
    let good: Vec<&str> = text.lines().take(2).collect();
    std::fs::write(&path, format!("{}\n{{\"job\":7,\"sta", good.join("\n"))).unwrap();
    let store = ResultStore::open_existing(&dir).unwrap();
    assert_eq!(store.completed().len(), 2, "torn tail drops exactly one record");
    assert_eq!(store.load_metrics(Some(&jobs)).unwrap().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_job_record_is_refused_by_name() {
    // Two records for the same job id mean the store was corrupted or
    // merged with itself; last-wins would silently pick one.
    let spec = spec();
    let jobs = spec.expand();
    let dir = scratch("dupid");
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        store.run(&Executor::with_workers(2), &jobs, None).unwrap();
    }
    let path = dir.join("records.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let first = text.lines().next().unwrap();
    std::fs::write(&path, format!("{text}{first}\n")).unwrap();

    let err = ResultStore::open_existing(&dir).unwrap_err();
    assert!(
        err.to_string().contains("job 0") && err.to_string().contains("more than one record"),
        "open_existing must name the duplicated job: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_merge_is_byte_identical_and_refuses_overlap() {
    let spec = spec();
    let jobs = spec.expand();
    let one_shot = Executor::with_workers(1).run(&spec);

    let dirs: Vec<PathBuf> = (0..2).map(|i| scratch(&format!("streammerge{i}"))).collect();
    let mut stores = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        let mut store = ResultStore::open(dir, Manifest::for_spec(&spec, i, 2)).unwrap();
        store.run(&Executor::with_workers(i + 2), &spec.shard(i, 2), None).unwrap();
        stores.push(store);
    }
    let refs: Vec<&ResultStore> = stores.iter().collect();

    // Record-by-record merge into a CSV sink == the batch result's CSV.
    let mut sink = CsvSink::new("durability", Vec::new());
    merge_stores_streaming(&refs, &jobs, &mut sink).unwrap();
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), one_shot.to_csv());

    // Two stores both holding job 0 (the full unsharded grid twice) is
    // an overlap, not a merge.
    let dup_dirs: Vec<PathBuf> = (0..2).map(|i| scratch(&format!("dupstore{i}"))).collect();
    let mut dup_stores = Vec::new();
    for dir in &dup_dirs {
        let mut store = ResultStore::open(dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        store.run(&Executor::with_workers(2), &jobs, None).unwrap();
        dup_stores.push(store);
    }
    let dup_refs: Vec<&ResultStore> = dup_stores.iter().collect();
    let mut sink = CsvSink::new("durability", Vec::new());
    let err = merge_stores_streaming(&dup_refs, &jobs, &mut sink).unwrap_err();
    assert!(err.to_string().contains("more than one store"), "got: {err}");

    for dir in dirs.iter().chain(&dup_dirs) {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn run_rejects_jobs_outside_the_shard() {
    let spec = spec();
    let dir = scratch("wrongshard");
    let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 1, 2)).unwrap();
    // Handing shard 0's jobs to shard 1's store is a caller bug.
    let err = store.run(&Executor::bounded(), &spec.shard(0, 2), None).unwrap_err();
    assert!(err.to_string().contains("does not belong to shard"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
