//! Chaos tests: deterministic fault injection through the `eend_fail`
//! registry, pinning the PR's containment invariant — **a faulted
//! campaign, resumed or retried, produces byte-identical output to a
//! fault-free run**.
//!
//! The failpoint registry is process-global, so every test takes the
//! same lock and clears the registry on entry; panic-action failpoints
//! that fire on the *consumer* side of the stream (`store.bookkeep`)
//! run on one worker, where the serial fast path lets the panic unwind
//! to the caller instead of deadlocking the worker scope.

use eend_campaign::store::Manifest;
use eend_campaign::{
    Backoff, BaseScenario, CampaignSpec, CsvSink, Executor, FailurePolicy, ResultStore,
    RunOptions,
};
use eend_fail::FailAction;
use eend_wireless::stacks;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes registry access across tests and starts from a clean
/// slate (a poisoned lock just means another chaos test panicked on
/// purpose).
fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    eend_fail::clear();
    g
}

/// A unique scratch directory per test invocation (no tempfile dep).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eend-chaos-test-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 4-job grid: 1 stack x 2 rates x 2 seeds, shortened runs.
fn spec() -> CampaignSpec {
    CampaignSpec::new("chaos", BaseScenario::Small)
        .stacks(vec![stacks::titan_pc()])
        .rates(vec![2.0, 4.0])
        .seeds(2)
        .secs(20)
}

/// The fault-free reference output every chaos run must reproduce.
fn fault_free_csv(spec: &CampaignSpec) -> String {
    Executor::with_workers(1).run(spec).to_csv()
}

/// Retry with no backoff sleep — chaos tests must not wait on the clock.
fn retry_now(max_attempts: u32) -> FailurePolicy {
    FailurePolicy::Retry { max_attempts, backoff: Backoff::none() }
}

#[test]
fn retried_job_panic_leaves_no_trace_in_the_result() {
    let _g = guard();
    let spec = spec();
    let jobs = spec.expand();
    let reference = fault_free_csv(&spec);
    let dir = scratch("retry");

    // Job 2 panics once; the retry policy re-attempts it and succeeds
    // (one-shot failpoints disarm after firing, like a transient fault).
    eend_fail::set("job.run", FailAction::Panic, 2, false);
    let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
    let opts = RunOptions { limit: None, policy: retry_now(3), cancel: None };
    let outcome = store.run_with(&Executor::with_workers(2), &jobs, &opts, |_| {}).unwrap();
    assert_eq!((outcome.ran, outcome.failed), (4, 0));
    assert!(store.failures().is_empty());
    assert!(
        !dir.join("failures.jsonl").exists(),
        "a retried-to-success campaign must not create a failure log"
    );
    assert_eq!(store.assemble(&jobs).unwrap().to_csv(), reference);
    eend_fail::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn skipped_failure_is_durable_and_resume_reattempts_exactly_it() {
    let _g = guard();
    let spec = spec();
    let jobs = spec.expand();
    let reference = fault_free_csv(&spec);
    let dir = scratch("skip");

    // Under Skip the single permitted attempt of job 1 panics; the
    // campaign keeps going and records the failure durably.
    eend_fail::set("job.run", FailAction::Panic, 1, false);
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        let opts = RunOptions { limit: None, policy: FailurePolicy::Skip, cancel: None };
        let outcome =
            store.run_with(&Executor::with_workers(2), &jobs, &opts, |_| {}).unwrap();
        assert_eq!((outcome.ran, outcome.failed), (3, 1));
        let failure = &store.failures()[&1];
        assert_eq!(failure.attempts, 1);
        assert!(failure.cause.contains("job.run"), "cause: {}", failure.cause);
        assert!(!store.completed().contains(&1));
    }
    assert!(dir.join("failures.jsonl").exists());

    // A fresh open scans the failure log back and still counts job 1 as
    // pending; the clean re-run completes only that job.
    eend_fail::clear();
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        assert_eq!(store.completed().len(), 3);
        assert_eq!(store.failures().keys().copied().collect::<Vec<_>>(), [1]);
        let opts = RunOptions { limit: None, policy: FailurePolicy::Skip, cancel: None };
        let outcome =
            store.run_with(&Executor::with_workers(2), &jobs, &opts, |_| {}).unwrap();
        assert_eq!((outcome.ran, outcome.failed), (1, 0));
        assert!(store.failures().is_empty(), "success must prune the stale failure");
        assert_eq!(store.assemble(&jobs).unwrap().to_csv(), reference);
    }
    // And the pruning is durable across another open.
    let store = ResultStore::open_existing(&dir).unwrap();
    assert!(store.failures().is_empty());
    assert_eq!(store.completed().len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn abort_policy_still_propagates_the_panic_unchanged() {
    let _g = guard();
    let spec = spec();
    let jobs = spec.expand();
    let dir = scratch("abort");

    eend_fail::set("job.run", FailAction::Panic, 1, false);
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        // `run` uses the store's policy — no policy recorded means
        // Abort, the pre-containment behaviour: the panic unwinds.
        let result = catch_unwind(AssertUnwindSafe(|| {
            store.run(&Executor::with_workers(1), &jobs, None)
        }));
        assert!(result.is_err(), "abort policy must let the panic unwind");
    }
    // Nothing after the panic ran; a clean re-run completes the grid.
    eend_fail::clear();
    let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
    assert!(store.failures().is_empty(), "abort contains nothing, so no failure log");
    store.run(&Executor::with_workers(2), &jobs, None).unwrap();
    assert!(store.is_complete(&jobs));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_flush_error_is_retried_without_corrupting_the_store() {
    let _g = guard();
    let spec = spec();
    let jobs = spec.expand();
    let reference = fault_free_csv(&spec);
    let dir = scratch("flush");

    // The 2nd record append fails once with an injected I/O error; the
    // retry policy re-appends after rolling the file back to the last
    // good length.
    eend_fail::set("store.flush", FailAction::IoErr, 2, false);
    let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
    let opts = RunOptions { limit: None, policy: retry_now(3), cancel: None };
    let outcome = store.run_with(&Executor::with_workers(2), &jobs, &opts, |_| {}).unwrap();
    assert_eq!((outcome.ran, outcome.failed), (4, 0));
    assert_eq!(store.assemble(&jobs).unwrap().to_csv(), reference);
    drop(store);

    // The file scan agrees: 4 clean records, nothing torn or duplicated.
    let store = ResultStore::open_existing(&dir).unwrap();
    assert_eq!(store.completed().len(), 4);
    eend_fail::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_between_record_flush_and_bookkeeping_resumes_without_duplicates() {
    let _g = guard();
    let spec = spec();
    let jobs = spec.expand();
    let reference = fault_free_csv(&spec);
    let dir = scratch("bookkeep");

    // The crash-consistency window the store must survive: job 1's
    // record is durable on disk, but the process dies before the
    // in-memory bookkeeping (and any manifest/failure accounting) runs.
    // One worker: the panic unwinds on the caller thread, modelling the
    // kill without deadlocking the worker scope.
    eend_fail::set("store.bookkeep", FailAction::Panic, 1, false);
    {
        let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
        let opts = RunOptions { limit: None, policy: FailurePolicy::Abort, cancel: None };
        let result = catch_unwind(AssertUnwindSafe(|| {
            store.run_with(&Executor::with_workers(1), &jobs, &opts, |_| {})
        }));
        assert!(result.is_err(), "the injected kill must unwind");
    }
    eend_fail::clear();

    // Resume: the durable record counts — job 1 is NOT re-run — and the
    // remainder completes to a byte-identical result.
    let mut store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
    assert_eq!(
        store.completed().iter().copied().collect::<Vec<_>>(),
        [0, 1],
        "the flushed record must survive the kill"
    );
    let opts = RunOptions { limit: None, policy: FailurePolicy::Abort, cancel: None };
    let outcome = store.run_with(&Executor::with_workers(2), &jobs, &opts, |_| {}).unwrap();
    assert_eq!(outcome.ran, 2, "resume must run exactly the missing jobs");
    let text = std::fs::read_to_string(dir.join("records.jsonl")).unwrap();
    assert_eq!(text.lines().count(), 4, "no duplicate records after resume");
    assert_eq!(store.assemble(&jobs).unwrap().to_csv(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failure_policy_round_trips_through_the_manifest() {
    let _g = guard();
    let spec = spec();
    let dir = scratch("policy");

    // An explicit policy is persisted on open...
    let mut manifest = Manifest::for_spec(&spec, 0, 1);
    manifest.on_failure = Some(FailurePolicy::retry(3).label());
    drop(ResultStore::open(&dir, manifest).unwrap());
    let store = ResultStore::open_existing(&dir).unwrap();
    assert_eq!(store.policy(), FailurePolicy::retry(3));
    drop(store);

    // ...an open without a policy inherits the stored one...
    let store = ResultStore::open(&dir, Manifest::for_spec(&spec, 0, 1)).unwrap();
    assert_eq!(store.policy(), FailurePolicy::retry(3));
    drop(store);

    // ...and a different explicit policy replaces it durably.
    let mut manifest = Manifest::for_spec(&spec, 0, 1);
    manifest.on_failure = Some(FailurePolicy::Skip.label());
    drop(ResultStore::open(&dir, manifest).unwrap());
    let store = ResultStore::open_existing(&dir).unwrap();
    assert_eq!(store.policy(), FailurePolicy::Skip);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sink_emit_fault_surfaces_as_an_error_not_a_crash() {
    let _g = guard();
    let spec = spec();
    let jobs = spec.expand();
    let reference = fault_free_csv(&spec);

    // The 2nd emitted row errors: the stream aborts cleanly with the
    // failpoint's error, no panic, no partial row.
    eend_fail::set("sink.emit", FailAction::IoErr, 2, false);
    let executor = Executor::with_workers(2);
    let mut sink = CsvSink::new("chaos", Vec::new());
    let err = executor.run_streaming(&jobs, &mut sink).unwrap_err();
    assert!(err.to_string().contains("sink.emit"), "got: {err}");

    // The same stream, fault-free, is byte-identical to the reference.
    eend_fail::clear();
    let mut sink = CsvSink::new("chaos", Vec::new());
    executor.run_streaming(&jobs, &mut sink).unwrap();
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), reference);
}
