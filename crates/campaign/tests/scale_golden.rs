//! Golden snapshots for the `mobility_scale` preset family
//! (mobility1k / mobility10k / mobility100k).
//!
//! The small-network goldens pin the full `{:#?}` rendering of
//! [`RunMetrics`]; at 10⁴–10⁵ nodes that would be a six-figure line
//! count, so this family pins [`RunMetrics::scale_digest`] instead —
//! every scalar counter verbatim plus order-sensitive FNV-1a hashes of
//! the per-node energy vector and route list. A single-bit drift in any
//! per-node f64 still fails the diff.
//!
//! Coverage is tiered by test-time cost:
//!
//! * **mobility1k** runs its full 20 s horizon (~1 s in a debug build).
//! * **mobility10k** runs a 5 s horizon — long enough for discovery,
//!   steady-state CBR and two mobility ticks.
//! * **mobility100k** is too slow to simulate in a debug-build test
//!   (≈1 min *release*), so its golden pins scenario *construction*:
//!   grid geometry, flow endpoints and an FNV-1a hash over every placed
//!   position. The run itself is exercised by the `scale-smoke` CI job
//!   and the BENCH records.
//!
//! Regenerate after an intentional behaviour change with
//! `EEND_BLESS=1 cargo test -p eend-campaign --test scale_golden`.

use eend_sim::{SimDuration, SimRng};
use eend_wireless::{presets, stacks, Scenario, Simulator};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn check(name: &str, actual: String) {
    let path = golden_path(name);
    if std::env::var_os("EEND_BLESS").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with EEND_BLESS=1 to create it", path.display())
    });
    assert!(
        golden == actual,
        "{name}: scale-run behaviour drifted from pinned digest \
         (EEND_BLESS=1 regenerates after an intentional change)\n\
         --- golden ---\n{golden}\n--- actual ---\n{actual}"
    );
}

fn run_digest(scenario: &Scenario) -> String {
    let metrics = Simulator::new(scenario).run();
    assert!(metrics.data_sent > 0, "scale scenario moved no data; snapshot is vacuous");
    metrics.scale_digest()
}

#[test]
fn mobility1k_full_run_matches_golden() {
    check("scale_mobility1k", run_digest(&presets::mobility1k(stacks::titan_pc(), 7)));
}

#[test]
fn mobility10k_short_run_matches_golden() {
    let mut scenario = presets::mobility10k(stacks::titan_pc(), 7);
    scenario.duration = SimDuration::from_secs(5);
    check("scale_mobility10k_5s", run_digest(&scenario));
}

/// FNV-1a over the bit patterns of every placed position.
fn position_hash(scenario: &Scenario) -> u64 {
    // Any fixed RNG seed pins the placement logic; the per-run seed
    // derivation is pinned separately by the run digests above.
    let positions = scenario.placement.positions(&mut SimRng::new(11));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut write = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (x, y) in positions {
        write(x.to_bits());
        write(y.to_bits());
    }
    h
}

#[test]
fn scale_preset_construction_matches_golden() {
    let mut out = String::new();
    for (name, scenario) in [
        ("mobility1k", presets::mobility1k(stacks::titan_pc(), 7)),
        ("mobility10k", presets::mobility10k(stacks::titan_pc(), 7)),
        ("mobility100k", presets::mobility100k(stacks::titan_pc(), 7)),
    ] {
        out.push_str(&format!(
            "{name}: n={} placement={:?} flows={} pairs={:?} duration={:?} positions_fnv1a={:#018x}\n",
            scenario.placement.node_count(),
            scenario.placement,
            scenario.flows.count,
            scenario.flows.pairs.as_ref().map(|p| (p.first().copied(), p.last().copied())),
            scenario.duration,
            position_hash(&scenario),
        ));
    }
    check("scale_construction", out);
}
