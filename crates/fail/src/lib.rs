//! Deterministic failpoints for chaos-testing the campaign stack.
//!
//! A *failpoint* is a named site in production code (`"store.flush"`,
//! `"job.run"`, `"serve.conn"`, …) that normally does nothing. A test — or an
//! operator via the `EEND_FAILPOINTS` environment variable — can arm a site
//! with an [`FailAction`] and a trigger point, and the site then fails in a
//! fully reproducible way: panic, return an I/O error, or drop a connection.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The fast path is a single relaxed atomic
//!    load of a process-global flag; no site is even looked up unless at
//!    least one failpoint has ever been armed.
//! 2. **Deterministic under parallelism.** Two trigger modes exist. *Value*
//!    triggers ([`hit_at`]) match a caller-supplied number — e.g. the global
//!    job index — so they fire on the same logical operation no matter how
//!    work is scheduled across worker threads. *Hit-count* triggers ([`hit`])
//!    fire on the Nth invocation of the site; they are deterministic only
//!    for sites executed on a single thread in a fixed order (the campaign
//!    consumer thread qualifies: records are emitted in job order).
//! 3. **One-shot by default.** A triggered site disarms itself, so a retry
//!    of the same operation succeeds — which is exactly what retry-policy
//!    tests need. Append `+` in the env syntax (or pass `sticky = true`) for
//!    a site that keeps failing.
//!
//! Env syntax (parsed once, on first use):
//!
//! ```text
//! EEND_FAILPOINTS="job.run=panic@2;store.flush=ioerr@3;serve.conn=disconnect"
//! ```
//!
//! Each clause is `site=action[@N][+]`: `action` is `panic`, `ioerr`, or
//! `disconnect`; `@N` is the 1-based trigger point (default 1); a trailing
//! `+` makes the site sticky. Whether `N` counts hits or matches a value is
//! a property of the *site* (each call site picks [`hit`] or [`hit_at`]),
//! documented alongside the site in `crates/bench/DESIGN.md`.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// What a triggered failpoint does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site — models a crashing job or a killed process.
    Panic,
    /// Surface `io::ErrorKind::Other` from the site — models a transient
    /// I/O fault (full disk, flaky NFS, torn write).
    IoErr,
    /// Abandon the stream / drop the connection at the site.
    Disconnect,
}

impl FailAction {
    fn parse(s: &str) -> Result<FailAction, String> {
        match s {
            "panic" => Ok(FailAction::Panic),
            "ioerr" => Ok(FailAction::IoErr),
            "disconnect" => Ok(FailAction::Disconnect),
            other => Err(format!(
                "unknown failpoint action `{other}` (expected panic|ioerr|disconnect)"
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            FailAction::Panic => "panic",
            FailAction::IoErr => "ioerr",
            FailAction::Disconnect => "disconnect",
        }
    }
}

struct Site {
    action: FailAction,
    /// 1-based trigger point: hit ordinal for [`hit`], matched value for
    /// [`hit_at`].
    at: u64,
    /// Sticky sites keep firing once reached; one-shot sites disarm after
    /// the first trigger.
    sticky: bool,
    hits: AtomicU64,
    fired: AtomicBool,
}

impl Site {
    fn trigger_on(&self, n: u64) -> bool {
        if self.sticky {
            return n >= self.at;
        }
        n == self.at && !self.fired.swap(true, Ordering::SeqCst)
    }
}

/// Fast-path gate: false until the first site is armed, so un-instrumented
/// processes pay one relaxed load per site visit and nothing else.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REG: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn env_init() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        if let Ok(spec) = std::env::var("EEND_FAILPOINTS") {
            if !spec.trim().is_empty() {
                match configure(&spec) {
                    Ok(n) => eprintln!("eend_fail: armed {n} failpoint(s) from EEND_FAILPOINTS"),
                    Err(e) => eprintln!("eend_fail: ignoring bad EEND_FAILPOINTS: {e}"),
                }
            }
        }
    });
}

/// Arm failpoints from a spec string (the `EEND_FAILPOINTS` syntax).
///
/// Returns the number of sites armed, or a description of the first parse
/// error. Sites already armed keep their counters unless re-specified.
pub fn configure(spec: &str) -> Result<usize, String> {
    let mut armed = 0;
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, rhs) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause `{clause}` is missing `=`"))?;
        let (rhs, sticky) = match rhs.strip_suffix('+') {
            Some(r) => (r, true),
            None => (rhs, false),
        };
        let (action, at) = match rhs.split_once('@') {
            Some((a, n)) => {
                let at: u64 = n
                    .parse()
                    .map_err(|_| format!("failpoint trigger `@{n}` is not a number"))?;
                if at == 0 {
                    return Err("failpoint trigger points are 1-based; @0 never fires".into());
                }
                (FailAction::parse(a)?, at)
            }
            None => (FailAction::parse(rhs)?, 1),
        };
        set(site, action, at, sticky);
        armed += 1;
    }
    Ok(armed)
}

/// Arm a single failpoint programmatically (the test-facing API).
///
/// `at` is the 1-based trigger point; `sticky` keeps the site firing once
/// reached instead of disarming after the first trigger.
pub fn set(site: &str, action: FailAction, at: u64, sticky: bool) {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.insert(
        site.to_string(),
        Site {
            action,
            at: at.max(1),
            sticky,
            hits: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        },
    );
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarm every failpoint and reset the fast-path gate. Tests call this
/// between cases; the env spec is *not* re-applied afterwards.
pub fn clear() {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.clear();
    ACTIVE.store(false, Ordering::SeqCst);
}

/// True if any failpoint is currently armed (after applying the env spec).
pub fn active() -> bool {
    env_init();
    ACTIVE.load(Ordering::Relaxed)
}

/// Visit a hit-count failpoint site: the Nth call triggers.
///
/// Returns the action to perform, or `None` (the overwhelmingly common
/// case). Only deterministic for sites visited from a single thread in a
/// fixed order.
#[inline]
pub fn hit(site: &str) -> Option<FailAction> {
    if !active() {
        return None;
    }
    hit_slow(site, None)
}

/// Visit a value-matched failpoint site: triggers when `value` equals the
/// armed trigger point (or exceeds it, for sticky sites).
///
/// Deterministic under any parallel schedule as long as `value` identifies
/// the logical operation (e.g. a global job index).
#[inline]
pub fn hit_at(site: &str, value: u64) -> Option<FailAction> {
    if !active() {
        return None;
    }
    hit_slow(site, Some(value))
}

#[cold]
fn hit_slow(site: &str, value: Option<u64>) -> Option<FailAction> {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let s = reg.get(site)?;
    let n = match value {
        Some(v) => v,
        None => s.hits.fetch_add(1, Ordering::SeqCst) + 1,
    };
    if s.trigger_on(n) {
        eprintln!("eend_fail: failpoint {site} fired ({} at {n})", s.action.name());
        Some(s.action)
    } else {
        None
    }
}

fn to_io_err(site: &str, action: FailAction) -> io::Error {
    match action {
        FailAction::Panic => panic!("failpoint {site} fired (injected panic)"),
        FailAction::IoErr => io::Error::other(format!("failpoint {site} fired (injected I/O error)")),
        FailAction::Disconnect => io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("failpoint {site} fired (injected disconnect)"),
        ),
    }
}

/// Visit a hit-count site from I/O code: panics for [`FailAction::Panic`],
/// otherwise converts the action into an `io::Error`.
#[inline]
pub fn io_guard(site: &str) -> io::Result<()> {
    match hit(site) {
        None => Ok(()),
        Some(a) => Err(to_io_err(site, a)),
    }
}

/// Visit a value-matched site from I/O code; see [`io_guard`] and [`hit_at`].
#[inline]
pub fn io_guard_at(site: &str, value: u64) -> io::Result<()> {
    match hit_at(site, value) {
        None => Ok(()),
        Some(a) => Err(to_io_err(site, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; serialize the tests that touch it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_sites_return_none_and_cost_one_atomic_load() {
        let _g = guard();
        clear();
        assert_eq!(hit("nowhere"), None);
        assert_eq!(hit_at("nowhere", 7), None);
        assert!(io_guard("nowhere").is_ok());
    }

    #[test]
    fn hit_count_sites_fire_on_the_nth_visit_then_disarm() {
        let _g = guard();
        clear();
        set("t.count", FailAction::IoErr, 3, false);
        assert_eq!(hit("t.count"), None);
        assert_eq!(hit("t.count"), None);
        assert_eq!(hit("t.count"), Some(FailAction::IoErr));
        // One-shot: the 4th and later visits succeed again.
        assert_eq!(hit("t.count"), None);
        clear();
    }

    #[test]
    fn value_sites_match_the_operation_not_the_visit_order() {
        let _g = guard();
        clear();
        set("t.value", FailAction::Panic, 5, false);
        assert_eq!(hit_at("t.value", 9), None);
        assert_eq!(hit_at("t.value", 5), Some(FailAction::Panic));
        // One-shot: a retry of operation 5 passes.
        assert_eq!(hit_at("t.value", 5), None);
        clear();
    }

    #[test]
    fn sticky_sites_keep_firing_once_reached() {
        let _g = guard();
        clear();
        set("t.sticky", FailAction::Disconnect, 2, true);
        assert_eq!(hit("t.sticky"), None);
        assert_eq!(hit("t.sticky"), Some(FailAction::Disconnect));
        assert_eq!(hit("t.sticky"), Some(FailAction::Disconnect));
        clear();
    }

    #[test]
    fn configure_parses_the_env_syntax() {
        let _g = guard();
        clear();
        let n = configure("a.b=panic@2; c.d=ioerr ;e.f=disconnect@4+").unwrap();
        assert_eq!(n, 3);
        assert_eq!(hit_at("a.b", 2), Some(FailAction::Panic));
        assert_eq!(hit("c.d"), Some(FailAction::IoErr));
        assert_eq!(hit_at("e.f", 9), Some(FailAction::Disconnect));
        assert!(configure("oops").is_err());
        assert!(configure("a=panic@zero").is_err());
        assert!(configure("a=panic@0").is_err());
        assert!(configure("a=explode").is_err());
        clear();
    }

    #[test]
    fn io_guard_converts_actions_into_errors() {
        let _g = guard();
        clear();
        set("t.io", FailAction::IoErr, 1, false);
        let e = io_guard("t.io").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Other);
        set("t.conn", FailAction::Disconnect, 1, false);
        let e = io_guard("t.conn").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionAborted);
        clear();
    }
}
