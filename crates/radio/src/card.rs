//! The [`RadioCard`] power profile and path-loss arithmetic.

use std::fmt;

/// The power profile of a wireless interface.
///
/// Powers are in milliwatts, distances in metres, matching the paper's
/// Table 1. Transmission power at distance `d` follows the paper's model
/// `Ptx(d) = Pbase + α₂·dⁿ`, where `Pbase` is the fixed transmitter
/// electronics cost and `α₂·dⁿ` is the radiated power `Pt` needed to cover
/// `d` under 1/dⁿ path loss (2 ≤ n ≤ 4).
///
/// The card's `nominal_range_m` is the distance its maximum radiated power
/// reaches (the `D` values of Fig. 7); control packets are always sent at
/// this maximum (Eq 2), data packets at a controlled level when transmission
/// power control is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioCard {
    /// Human-readable card name (e.g. `"Cabletron"`).
    pub name: &'static str,
    /// Idle-mode power draw, mW.
    pub p_idle_mw: f64,
    /// Receive-mode power draw, mW.
    pub p_rx_mw: f64,
    /// Sleep-mode power draw, mW (the paper treats it as negligible).
    pub p_sleep_mw: f64,
    /// Base transmitter electronics cost `Pbase`, mW.
    pub p_base_mw: f64,
    /// Transmit amplifier coefficient `α₂` (mW per mⁿ).
    pub alpha2: f64,
    /// Path-loss exponent `n` (2 ≤ n ≤ 4).
    pub path_loss_n: f64,
    /// Maximum reachable distance at full radiated power, m.
    pub nominal_range_m: f64,
    /// Energy charged per sleep→awake transition (`Esw` of Eq 3), mJ.
    pub switch_energy_mj: f64,
}

impl RadioCard {
    /// Radiated (amplifier) power `Pt(d) = α₂·dⁿ` needed to reach `d`
    /// metres, in mW. Not clamped to the card's maximum.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or non-finite.
    pub fn radiated_power_mw(&self, d: f64) -> f64 {
        assert!(d.is_finite() && d >= 0.0, "bad distance {d}");
        self.alpha2 * d.powf(self.path_loss_n)
    }

    /// Total transmit power `Ptx(d) = Pbase + Pt(d)` drawn while sending to
    /// a receiver `d` metres away, in mW. Not clamped.
    pub fn tx_total_power_mw(&self, d: f64) -> f64 {
        self.p_base_mw + self.radiated_power_mw(d)
    }

    /// Maximum radiated power `Ptᵐᵃˣ` (at nominal range), mW.
    pub fn max_radiated_power_mw(&self) -> f64 {
        self.radiated_power_mw(self.nominal_range_m)
    }

    /// Maximum total transmit power `Ptxᵐᵃˣ`, mW. Control packets are
    /// charged at this level (Eq 2).
    pub fn max_tx_total_power_mw(&self) -> f64 {
        self.tx_total_power_mw(self.nominal_range_m)
    }

    /// Transmit power used for a data frame to a receiver `d` metres away.
    ///
    /// With `power_control` the radiated power is tuned to the distance
    /// (clamped to the card's maximum); without it the card transmits at
    /// full power regardless of distance.
    pub fn data_tx_power_mw(&self, d: f64, power_control: bool) -> f64 {
        if power_control {
            let pt = self.radiated_power_mw(d).min(self.max_radiated_power_mw());
            self.p_base_mw + pt
        } else {
            self.max_tx_total_power_mw()
        }
    }

    /// `true` if a receiver `d` metres away is within transmission range.
    pub fn in_range(&self, d: f64) -> bool {
        d <= self.nominal_range_m
    }

    /// The distance reachable with radiated power `pt_mw`, in metres
    /// (inverse of [`RadioCard::radiated_power_mw`]).
    ///
    /// # Panics
    ///
    /// Panics if `pt_mw` is negative or non-finite.
    pub fn range_for_radiated_power_m(&self, pt_mw: f64) -> f64 {
        assert!(pt_mw.is_finite() && pt_mw >= 0.0, "bad power {pt_mw}");
        (pt_mw / self.alpha2).powf(1.0 / self.path_loss_n)
    }
}

impl fmt::Display for RadioCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (idle {} mW, rx {} mW, tx(d) = {} + {:.2e}·d^{} mW, D = {} m)",
            self.name,
            self.p_idle_mw,
            self.p_rx_mw,
            self.p_base_mw,
            self.alpha2,
            self.path_loss_n,
            self.nominal_range_m
        )
    }
}

#[cfg(test)]
mod tests {
    
    use crate::cards;

    #[test]
    fn power_at_range_matches_table1_spot_values() {
        // Cabletron: Pt(250) = 7.2e-8 · 250⁴ ≈ 281 mW.
        let c = cards::cabletron();
        assert!((c.max_radiated_power_mw() - 281.25).abs() < 0.5);
        // Hypothetical Cabletron: Pt(250) = 5.2e-6 · 250⁴ ≈ 20.3 W — the
        // paper's "up to 20 W, above FCC's 1 W cap" observation.
        let h = cards::hypothetical_cabletron();
        assert!((h.max_radiated_power_mw() / 1000.0 - 20.31).abs() < 0.1);
        assert!(h.max_radiated_power_mw() > 1000.0, "exceeds FCC 1 W cap");
    }

    #[test]
    fn tx_power_is_monotone_in_distance() {
        for card in cards::all() {
            let mut last = -1.0;
            for k in 0..=10 {
                let d = card.nominal_range_m * k as f64 / 10.0;
                let p = card.tx_total_power_mw(d);
                assert!(p > last, "{}: Ptx must grow with d", card.name);
                last = p;
            }
        }
    }

    #[test]
    fn range_power_roundtrip() {
        for card in cards::all() {
            for d in [1.0, 10.0, card.nominal_range_m] {
                let p = card.radiated_power_mw(d);
                let back = card.range_for_radiated_power_m(p);
                assert!((back - d).abs() < 1e-6, "{}: roundtrip {d} -> {back}", card.name);
            }
        }
    }

    #[test]
    fn power_control_never_exceeds_max() {
        let c = cards::cabletron();
        for d in [1.0, 100.0, 250.0, 400.0] {
            let p = c.data_tx_power_mw(d, true);
            assert!(p <= c.max_tx_total_power_mw() + 1e-9);
        }
        // Without PC, always max.
        assert_eq!(c.data_tx_power_mw(1.0, false), c.max_tx_total_power_mw());
    }

    #[test]
    fn power_control_saves_at_short_range() {
        let c = cards::cabletron();
        assert!(c.data_tx_power_mw(50.0, true) < c.data_tx_power_mw(50.0, false));
    }

    #[test]
    fn in_range_boundary() {
        let c = cards::mica2();
        assert!(c.in_range(68.0));
        assert!(!c.in_range(68.1));
    }

    #[test]
    #[should_panic(expected = "bad distance")]
    fn negative_distance_panics() {
        cards::cabletron().radiated_power_mw(-1.0);
    }

    #[test]
    fn display_mentions_name() {
        let text = cards::aironet_350().to_string();
        assert!(text.contains("Aironet 350"));
    }
}
