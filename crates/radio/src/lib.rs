//! Wireless card models, path loss and per-node energy accounting.
//!
//! Implements Section 2.1 of Sengul & Kravets (ICDCS 2007): a node's energy
//! consumption is the sum of its communication energy (data + control) and
//! its passive energy (idle + sleep + state switching), each the product of
//! time spent in a radio operating mode and that mode's power draw.
//!
//! The crate provides:
//!
//! - [`RadioCard`]: the power profile of a wireless interface, with the
//!   paper's Table 1 presets in [`cards`] (Aironet 350, Cabletron, the
//!   *Hypothetical Cabletron*, Mica2, LEACH with n = 2 and n = 4);
//! - transmission power as a function of distance,
//!   `Ptx(d) = Pbase + α₂·dⁿ` (the paper's 1/dⁿ path-loss model), plus
//!   power-control helpers;
//! - [`EnergyMeter`]: exact integration of energy over state changes with
//!   the data/control split of Eqs 1–2 and the switch cost `Esw` of Eq 3.
//!
//! # Example
//!
//! ```
//! use eend_radio::{cards, EnergyMeter, TrafficClass};
//! use eend_sim::SimTime;
//!
//! let card = cards::cabletron();
//! let mut meter = EnergyMeter::new(card);
//! // Idle for 1 s, then transmit a data frame at full power for 10 ms.
//! meter.begin_tx(SimTime::from_secs(1), card.max_tx_total_power_mw(), TrafficClass::Data);
//! meter.set_idle(SimTime::from_secs(1) + eend_sim::SimDuration::from_millis(10));
//! let report = meter.finish(SimTime::from_secs(2));
//! assert!(report.tx_data_mj > 0.0 && report.idle_mj > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod card;
pub mod cards;
pub mod energy;

pub use card::RadioCard;
pub use energy::{EnergyMeter, EnergyReport, RadioState, TrafficClass};
