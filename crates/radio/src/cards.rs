//! The paper's Table 1 radio parameter presets.
//!
//! | Card | Pidle | Prx | Ptx(d) (mW, d in m) | D |
//! |---|---|---|---|---|
//! | Aironet 350 | 1350 | 1350 | 2165 + 3.6·10⁻⁷·d⁴ | 140 m |
//! | Cabletron | 830 | 1000 | 1118 + 7.2·10⁻⁸·d⁴ | 250 m |
//! | Hypothetical Cabletron | 830 | 1000 | 1118 + 5.2·10⁻⁶·d⁴ | 250 m |
//! | Mica2 | 21 | 21 | 10.2 + 9.4·10⁻⁷·d⁴ | 68 m |
//! | LEACH (n = 4) | x·50 | 50 | 50 + 1.3·10⁻⁶·d⁴ | 100 m |
//! | LEACH (n = 2) | x·50 | 50 | 50 + 10⁻²·d² | 75 m |
//!
//! Sleep powers and switch costs are not in Table 1 (the paper calls sleep
//! power "typically negligible"); we use vendor-typical values and expose
//! them as plain fields so experiments can override them. The LEACH idle
//! power is listed as a multiple `x` of 50 mW in the paper; the constructor
//! takes `x` (use 1.0 to make idle = receive, the common assumption).

use crate::card::RadioCard;

/// Default sleep→awake transition cost: 2 ms at idle power, the order of
/// magnitude measured for 802.11 cards. Sensor radios override this.
fn default_switch_cost_mj(p_idle_mw: f64) -> f64 {
    p_idle_mw * 0.002
}

/// Cisco Aironet 350 (802.11b), parameters fitted from measurement studies.
pub fn aironet_350() -> RadioCard {
    RadioCard {
        name: "Aironet 350",
        p_idle_mw: 1350.0,
        p_rx_mw: 1350.0,
        p_sleep_mw: 75.0,
        p_base_mw: 2165.0,
        alpha2: 3.6e-7,
        path_loss_n: 4.0,
        nominal_range_m: 140.0,
        switch_energy_mj: default_switch_cost_mj(1350.0),
    }
}

/// Cabletron Roamabout (802.11), the card used for the paper's main
/// simulation study (Sections 5.2.1–5.2.2).
pub fn cabletron() -> RadioCard {
    RadioCard {
        name: "Cabletron",
        p_idle_mw: 830.0,
        p_rx_mw: 1000.0,
        p_sleep_mw: 50.0,
        p_base_mw: 1118.0,
        alpha2: 7.2e-8,
        path_loss_n: 4.0,
        nominal_range_m: 250.0,
        switch_energy_mj: default_switch_cost_mj(830.0),
    }
}

/// The paper's *Hypothetical Cabletron*: identical to [`cabletron`] but with
/// `α₂ = 5.2·10⁻⁶`, chosen so that the characteristic hop count reaches 2 at
/// R/B = 0.25 — i.e. a card for which relaying *could* pay off. Used in
/// Section 5.2.3 (Figs 13–16).
pub fn hypothetical_cabletron() -> RadioCard {
    RadioCard {
        name: "Hypothetical Cabletron",
        alpha2: 5.2e-6,
        ..cabletron()
    }
}

/// Crossbow Mica2 sensor mote (CC1000 radio), fitted from the Pisa
/// measurement report the paper cites.
pub fn mica2() -> RadioCard {
    RadioCard {
        name: "Mica2",
        p_idle_mw: 21.0,
        p_rx_mw: 21.0,
        p_sleep_mw: 0.003,
        p_base_mw: 10.2,
        alpha2: 9.4e-7,
        path_loss_n: 4.0,
        nominal_range_m: 68.0,
        switch_energy_mj: 21.0 * 0.0002,
    }
}

/// The LEACH energy model with fourth-power path loss (multi-path regime),
/// `idle_factor` = the paper's `x` multiplier on the 50 mW receive power.
pub fn leach_n4(idle_factor: f64) -> RadioCard {
    RadioCard {
        name: "LEACH (n=4)",
        p_idle_mw: idle_factor * 50.0,
        p_rx_mw: 50.0,
        p_sleep_mw: 0.02,
        p_base_mw: 50.0,
        alpha2: 1.3e-6,
        path_loss_n: 4.0,
        nominal_range_m: 100.0,
        switch_energy_mj: 50.0 * 0.0002,
    }
}

/// The LEACH energy model with free-space (square-law) path loss.
pub fn leach_n2(idle_factor: f64) -> RadioCard {
    RadioCard {
        name: "LEACH (n=2)",
        p_idle_mw: idle_factor * 50.0,
        p_rx_mw: 50.0,
        p_sleep_mw: 0.02,
        p_base_mw: 50.0,
        alpha2: 1.0e-2,
        path_loss_n: 2.0,
        nominal_range_m: 75.0,
        switch_energy_mj: 50.0 * 0.0002,
    }
}

/// All Table 1 cards (LEACH with `x = 1`), in the paper's row order.
pub fn all() -> Vec<RadioCard> {
    vec![
        aironet_350(),
        cabletron(),
        hypothetical_cabletron(),
        mica2(),
        leach_n4(1.0),
        leach_n2(1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_idle_and_rx_powers() {
        assert_eq!(aironet_350().p_idle_mw, 1350.0);
        assert_eq!(aironet_350().p_rx_mw, 1350.0);
        assert_eq!(cabletron().p_idle_mw, 830.0);
        assert_eq!(cabletron().p_rx_mw, 1000.0);
        assert_eq!(mica2().p_idle_mw, 21.0);
        assert_eq!(leach_n4(1.0).p_rx_mw, 50.0);
        assert_eq!(leach_n4(2.0).p_idle_mw, 100.0);
    }

    #[test]
    fn table1_tx_models() {
        assert_eq!(aironet_350().p_base_mw, 2165.0);
        assert_eq!(aironet_350().alpha2, 3.6e-7);
        assert_eq!(cabletron().p_base_mw, 1118.0);
        assert_eq!(cabletron().alpha2, 7.2e-8);
        assert_eq!(hypothetical_cabletron().alpha2, 5.2e-6);
        assert_eq!(mica2().p_base_mw, 10.2);
        assert_eq!(leach_n2(1.0).path_loss_n, 2.0);
        assert_eq!(leach_n4(1.0).path_loss_n, 4.0);
    }

    #[test]
    fn fig7_ranges() {
        assert_eq!(aironet_350().nominal_range_m, 140.0);
        assert_eq!(cabletron().nominal_range_m, 250.0);
        assert_eq!(hypothetical_cabletron().nominal_range_m, 250.0);
        assert_eq!(mica2().nominal_range_m, 68.0);
        assert_eq!(leach_n4(1.0).nominal_range_m, 100.0);
        assert_eq!(leach_n2(1.0).nominal_range_m, 75.0);
    }

    #[test]
    fn hypothetical_differs_only_in_alpha2() {
        let c = cabletron();
        let h = hypothetical_cabletron();
        assert_eq!(c.p_idle_mw, h.p_idle_mw);
        assert_eq!(c.p_rx_mw, h.p_rx_mw);
        assert_eq!(c.p_base_mw, h.p_base_mw);
        assert_eq!(c.nominal_range_m, h.nominal_range_m);
        assert!(h.alpha2 > c.alpha2);
    }

    #[test]
    fn sleep_is_negligible_relative_to_idle() {
        for card in all() {
            assert!(
                card.p_sleep_mw < 0.1 * card.p_idle_mw,
                "{}: sleep power should be far below idle",
                card.name
            );
        }
    }

    #[test]
    fn all_lists_six_cards_with_unique_names() {
        let cards = all();
        assert_eq!(cards.len(), 6);
        let mut names: Vec<_> = cards.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
