//! Per-node energy integration (Eqs 1–4 of the paper).
//!
//! [`EnergyMeter`] tracks a node's radio state over simulation time and
//! integrates power × time on every transition, splitting communication
//! energy between data and control traffic (control frames are charged at
//! maximum transmit power, Eq 2) and passive energy between idle, sleep and
//! switching cost `Esw` (Eq 3).

use crate::card::RadioCard;
use eend_sim::{SimDuration, SimTime};

/// The four operating modes of a wireless interface (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioState {
    /// Actively transmitting a frame.
    Transmit,
    /// Actively receiving a frame.
    Receive,
    /// Awake but neither sending nor receiving; draws near-receive power.
    Idle,
    /// Power-save sleep; draws negligible power but cannot communicate.
    Sleep,
}

/// Whether a frame carries application data or protocol control traffic.
///
/// The split matters because `Ecomm = Edata + Econtrol` (Eq 1–2) and the
/// paper's central argument is about which heuristics blow up `Econtrol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Application payload (CBR packets).
    Data,
    /// Routing / MAC control overhead (RREQ, RREP, beacons, ATIM, RTS...).
    Control,
}

/// Accumulated energy and residency of one node, in millijoules/durations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Energy spent idling, mJ.
    pub idle_mj: f64,
    /// Energy spent sleeping, mJ.
    pub sleep_mj: f64,
    /// Energy spent on sleep→awake transitions (`Esw`), mJ.
    pub switch_mj: f64,
    /// Energy transmitting data frames, mJ.
    pub tx_data_mj: f64,
    /// Energy transmitting control frames, mJ.
    pub tx_ctrl_mj: f64,
    /// Energy receiving data frames, mJ.
    pub rx_data_mj: f64,
    /// Energy receiving control frames, mJ.
    pub rx_ctrl_mj: f64,
    /// Time spent in transmit mode.
    pub time_tx: SimDuration,
    /// Time spent in receive mode.
    pub time_rx: SimDuration,
    /// Time spent idle.
    pub time_idle: SimDuration,
    /// Time spent asleep.
    pub time_sleep: SimDuration,
    /// Number of sleep→awake transitions.
    pub wakeups: u64,
}

impl EnergyReport {
    /// Communication energy `Ecomm = Edata + Econtrol` (Eq 1 + Eq 2), mJ.
    pub fn comm_mj(&self) -> f64 {
        self.tx_data_mj + self.tx_ctrl_mj + self.rx_data_mj + self.rx_ctrl_mj
    }

    /// Passive energy `Epassive = idle + sleep + Esw` (Eq 3), mJ.
    pub fn passive_mj(&self) -> f64 {
        self.idle_mj + self.sleep_mj + self.switch_mj
    }

    /// Total node energy `Ecomm + Epassive` (Eq 4 summand), mJ.
    pub fn total_mj(&self) -> f64 {
        self.comm_mj() + self.passive_mj()
    }

    /// Data-traffic energy `Edata` (Eq 1), mJ.
    pub fn data_mj(&self) -> f64 {
        self.tx_data_mj + self.rx_data_mj
    }

    /// Control-overhead energy `Econtrol` (Eq 2), mJ.
    pub fn control_mj(&self) -> f64 {
        self.tx_ctrl_mj + self.rx_ctrl_mj
    }

    /// Transmit-side energy (the quantity plotted in Fig 10), mJ.
    pub fn transmit_mj(&self) -> f64 {
        self.tx_data_mj + self.tx_ctrl_mj
    }

    /// Element-wise accumulation, used to aggregate a network total (Eq 4).
    pub fn accumulate(&mut self, other: &EnergyReport) {
        self.idle_mj += other.idle_mj;
        self.sleep_mj += other.sleep_mj;
        self.switch_mj += other.switch_mj;
        self.tx_data_mj += other.tx_data_mj;
        self.tx_ctrl_mj += other.tx_ctrl_mj;
        self.rx_data_mj += other.rx_data_mj;
        self.rx_ctrl_mj += other.rx_ctrl_mj;
        self.time_tx += other.time_tx;
        self.time_rx += other.time_rx;
        self.time_idle += other.time_idle;
        self.time_sleep += other.time_sleep;
        self.wakeups += other.wakeups;
    }
}

/// Integrates one node's energy over its radio-state trajectory.
///
/// State changes are pushed by the MAC/power-management layers via
/// [`EnergyMeter::begin_tx`], [`EnergyMeter::begin_rx`],
/// [`EnergyMeter::set_idle`] and [`EnergyMeter::set_sleep`]; each call
/// charges the elapsed interval at the power of the *previous* state.
/// Timestamps must be non-decreasing.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    card: RadioCard,
    state: RadioState,
    tx_power_mw: f64,
    class: TrafficClass,
    last: SimTime,
    report: EnergyReport,
}

impl EnergyMeter {
    /// Creates a meter starting idle at time zero.
    pub fn new(card: RadioCard) -> Self {
        Self::starting(card, SimTime::ZERO, RadioState::Idle)
    }

    /// Creates a meter starting in `state` at `t0`.
    pub fn starting(card: RadioCard, t0: SimTime, state: RadioState) -> Self {
        EnergyMeter {
            card,
            state,
            tx_power_mw: 0.0,
            class: TrafficClass::Data,
            last: t0,
            report: EnergyReport::default(),
        }
    }

    /// The card this meter charges against.
    pub fn card(&self) -> &RadioCard {
        &self.card
    }

    /// Current radio state.
    pub fn state(&self) -> RadioState {
        self.state
    }

    fn charge_until(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "energy meter time went backwards: {} < {}", now, self.last);
        let dt = now.saturating_since(self.last);
        let secs = dt.as_secs_f64();
        match self.state {
            RadioState::Transmit => {
                let e = self.tx_power_mw * secs;
                match self.class {
                    TrafficClass::Data => self.report.tx_data_mj += e,
                    TrafficClass::Control => self.report.tx_ctrl_mj += e,
                }
                self.report.time_tx += dt;
            }
            RadioState::Receive => {
                let e = self.card.p_rx_mw * secs;
                match self.class {
                    TrafficClass::Data => self.report.rx_data_mj += e,
                    TrafficClass::Control => self.report.rx_ctrl_mj += e,
                }
                self.report.time_rx += dt;
            }
            RadioState::Idle => {
                self.report.idle_mj += self.card.p_idle_mw * secs;
                self.report.time_idle += dt;
            }
            RadioState::Sleep => {
                self.report.sleep_mj += self.card.p_sleep_mw * secs;
                self.report.time_sleep += dt;
            }
        }
        self.last = now;
    }

    fn transition(&mut self, now: SimTime, next: RadioState) {
        self.charge_until(now);
        if self.state == RadioState::Sleep && next != RadioState::Sleep {
            self.report.switch_mj += self.card.switch_energy_mj;
            self.report.wakeups += 1;
        }
        self.state = next;
    }

    /// Enters transmit mode at `now`, drawing `power_mw` for a frame of the
    /// given class.
    ///
    /// # Panics
    ///
    /// Panics if `power_mw` is negative or non-finite.
    pub fn begin_tx(&mut self, now: SimTime, power_mw: f64, class: TrafficClass) {
        assert!(power_mw.is_finite() && power_mw >= 0.0, "bad tx power {power_mw}");
        self.transition(now, RadioState::Transmit);
        self.tx_power_mw = power_mw;
        self.class = class;
    }

    /// Enters receive mode at `now` for a frame of the given class.
    pub fn begin_rx(&mut self, now: SimTime, class: TrafficClass) {
        self.transition(now, RadioState::Receive);
        self.class = class;
    }

    /// Returns to idle at `now`.
    pub fn set_idle(&mut self, now: SimTime) {
        self.transition(now, RadioState::Idle);
    }

    /// Enters sleep at `now`.
    pub fn set_sleep(&mut self, now: SimTime) {
        self.transition(now, RadioState::Sleep);
    }

    /// Charges the final interval up to `end` and returns the report.
    /// The meter remains usable (it simply keeps integrating from `end`).
    pub fn finish(&mut self, end: SimTime) -> EnergyReport {
        self.charge_until(end);
        self.report
    }

    /// The report as of the last charged instant, without advancing time.
    pub fn report_so_far(&self) -> &EnergyReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cards;
    use eend_sim::SimDuration;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn idle_integration_exact() {
        let card = cards::cabletron();
        let mut m = EnergyMeter::new(card);
        let r = m.finish(SimTime::from_secs(10));
        // 830 mW × 10 s = 8300 mJ.
        assert!((r.idle_mj - 8300.0).abs() < 1e-9);
        assert_eq!(r.time_idle, SimDuration::from_secs(10));
        assert_eq!(r.comm_mj(), 0.0);
    }

    #[test]
    fn tx_rx_split_by_class() {
        let card = cards::cabletron();
        let mut m = EnergyMeter::new(card);
        m.begin_tx(t(0), 1399.0, TrafficClass::Data);
        m.begin_rx(t(100), TrafficClass::Control);
        m.set_idle(t(200));
        let r = m.finish(t(200));
        assert!((r.tx_data_mj - 139.9).abs() < 1e-9, "1399 mW × 0.1 s");
        assert!((r.rx_ctrl_mj - 100.0).abs() < 1e-9, "1000 mW × 0.1 s");
        assert_eq!(r.tx_ctrl_mj, 0.0);
        assert_eq!(r.rx_data_mj, 0.0);
        assert!((r.data_mj() - 139.9).abs() < 1e-9);
        assert!((r.control_mj() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_and_wakeup_cost() {
        let card = cards::cabletron();
        let mut m = EnergyMeter::new(card);
        m.set_sleep(t(0));
        m.set_idle(t(1000));
        let r = m.finish(t(1000));
        // 50 mW × 1 s sleep + one Esw charge.
        assert!((r.sleep_mj - 50.0).abs() < 1e-9);
        assert!((r.switch_mj - card.switch_energy_mj).abs() < 1e-12);
        assert_eq!(r.wakeups, 1);
    }

    #[test]
    fn sleep_to_sleep_costs_nothing_extra() {
        let card = cards::cabletron();
        let mut m = EnergyMeter::new(card);
        m.set_sleep(t(0));
        m.set_sleep(t(500));
        let r = m.finish(t(1000));
        assert_eq!(r.wakeups, 0);
        assert_eq!(r.switch_mj, 0.0);
    }

    #[test]
    fn passive_dominates_when_no_traffic() {
        // The paper's Feeney–Nilsson point: with no communication, idle
        // energy dominates total consumption.
        let card = cards::cabletron();
        let mut m = EnergyMeter::new(card);
        m.begin_tx(SimTime::from_secs(10), card.max_tx_total_power_mw(), TrafficClass::Data);
        m.set_idle(SimTime::from_secs(10) + SimDuration::from_millis(5));
        let r = m.finish(SimTime::from_secs(900));
        assert!(r.passive_mj() > 100.0 * r.comm_mj());
    }

    #[test]
    fn report_accumulate_adds_fields() {
        let card = cards::mica2();
        let mut a = EnergyMeter::new(card);
        a.begin_tx(t(0), 30.0, TrafficClass::Data);
        let ra = a.finish(t(1000));
        let mut b = EnergyMeter::new(card);
        b.begin_rx(t(0), TrafficClass::Data);
        let rb = b.finish(t(1000));
        let mut total = EnergyReport::default();
        total.accumulate(&ra);
        total.accumulate(&rb);
        assert!((total.total_mj() - (ra.total_mj() + rb.total_mj())).abs() < 1e-9);
        assert_eq!(total.time_tx, SimDuration::from_secs(1));
        assert_eq!(total.time_rx, SimDuration::from_secs(1));
    }

    #[test]
    fn finish_is_resumable() {
        let card = cards::mica2();
        let mut m = EnergyMeter::new(card);
        let r1 = m.finish(SimTime::from_secs(1));
        let r2 = m.finish(SimTime::from_secs(2));
        assert!((r2.idle_mj - 2.0 * r1.idle_mj).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad tx power")]
    fn negative_power_panics() {
        let mut m = EnergyMeter::new(cards::mica2());
        m.begin_tx(t(0), f64::NAN, TrafficClass::Data);
    }

    proptest! {
        /// Energy conservation: bucket sums always equal the total, and the
        /// time residencies sum to the elapsed span, whatever the walk.
        #[test]
        fn random_walk_conserves_energy(steps in proptest::collection::vec((0u8..4, 1u64..10_000), 1..100)) {
            let card = cards::cabletron();
            let mut m = EnergyMeter::new(card);
            let mut now = SimTime::ZERO;
            for (s, dt) in steps {
                now += SimDuration::from_micros(dt);
                match s {
                    0 => m.begin_tx(now, 1500.0, TrafficClass::Data),
                    1 => m.begin_rx(now, TrafficClass::Control),
                    2 => m.set_idle(now),
                    _ => m.set_sleep(now),
                }
            }
            let end = now + SimDuration::from_millis(1);
            let r = m.finish(end);
            let sum = r.idle_mj + r.sleep_mj + r.switch_mj + r.tx_data_mj
                + r.tx_ctrl_mj + r.rx_data_mj + r.rx_ctrl_mj;
            prop_assert!((sum - r.total_mj()).abs() < 1e-9);
            let residency = r.time_tx + r.time_rx + r.time_idle + r.time_sleep;
            prop_assert_eq!(residency, end - SimTime::ZERO);
            prop_assert!(r.total_mj() >= 0.0);
        }
    }
}
