//! `eend` — energy-efficient network design for wireless ad hoc networks.
//!
//! A from-scratch Rust reproduction of **Sengul & Kravets, "Heuristic
//! Approaches to Energy-Efficient Network Design Problem" (ICDCS 2007)**:
//! the formal design problem, the paper's three heuristic approaches
//! (communication-energy first, joint optimisation, idling-energy first),
//! the analytical characteristic-hop-count study, and a packet-level
//! wireless simulator (MAC + PSM + ODPM + TITAN + DSR/MTPR/DSRH/DSDV)
//! that regenerates every table and figure of the paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `eend-sim` | deterministic discrete-event engine |
//! | [`graph`] | `eend-graph` | graph algorithms, Steiner approximations |
//! | [`radio`] | `eend-radio` | Table 1 cards, path loss, energy meters |
//! | [`core`] | `eend-core` | design problem, heuristics, Eqs 5–15 |
//! | [`wireless`] | `eend-wireless` | the packet-level simulator |
//! | [`stats`] | `eend-stats` | run summaries, 95 % CIs, tables |
//! | [`campaign`] | `eend-campaign` | scenario-matrix sweeps, bounded executor |
//! | [`opt`] | `eend-opt` | design-space search, evaluation oracles + cache |
//! | [`fail`] | `eend-fail` | deterministic failpoints for chaos tests |
//!
//! # Quick start
//!
//! ```
//! use eend::wireless::{presets, stacks, Simulator};
//!
//! // The paper's small-network scenario under its proposed protocol
//! // (shortened from 900 s to keep the doctest fast).
//! let mut scenario = presets::small_network(stacks::titan_pc(), 4.0, 7);
//! scenario.duration = eend::sim::SimDuration::from_secs(40);
//! let m = Simulator::new(&scenario).run();
//! println!("delivery {:.3}, goodput {:.0} bit/J",
//!          m.delivery_ratio(), m.energy_goodput_bit_per_j());
//! # assert!(m.data_sent > 0);
//! ```

#![warn(missing_docs)]

pub use eend_campaign as campaign;
pub use eend_core as core;
pub use eend_fail as fail;
pub use eend_graph as graph;
pub use eend_opt as opt;
pub use eend_radio as radio;
pub use eend_sim as sim;
pub use eend_stats as stats;
pub use eend_wireless as wireless;
