//! `eend-serve` — the campaign-as-a-service daemon.
//!
//! Accepts [`eend::campaign::CampaignSpec`]s over a line-oriented
//! HTTP/JSONL protocol, runs them on the bounded campaign executor,
//! persists every record into fingerprinted result stores under the
//! data directory, and answers re-submitted specs from cache by
//! fingerprint. See `eend::campaign::serve` for the protocol.
//!
//! ```text
//! eend-serve [--addr HOST:PORT] [--data DIR] [--workers N]
//!
//!   --addr HOST:PORT   listen address        [default 127.0.0.1:7878]
//!   --data DIR         store directory       [default eend-serve-data]
//!   --workers N        executor worker bound [default: all cores]
//! ```
//!
//! ```text
//! curl -X POST --data '{"campaign":"cli","axes":{"preset":"small",
//!   "stacks":["TITAN-PC"],"rates":[2,4],"node_counts":[],"speeds":[],
//!   "traffic":[],"radio":[],"failures":[],"seeds":2,"seed_base":0,
//!   "secs":30}}' http://127.0.0.1:7878/submit
//! curl http://127.0.0.1:7878/status/<fingerprint>
//! curl http://127.0.0.1:7878/stream/<fingerprint>?format=csv
//! ```

use eend::campaign::serve::serve;
use eend::campaign::{Executor, ServeConfig};
use std::path::PathBuf;
use std::process::exit;

/// SIGTERM/SIGINT handling without any dependency: a C signal handler
/// flips one flag; the main thread polls it and runs the graceful
/// shutdown sequence (stop accepting, let the in-flight record land
/// durably, flush stores, exit 0).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: eend-serve [--addr HOST:PORT] [--data DIR] [--workers N]\n\
         \n\
         Campaign-as-a-service daemon: POST /submit a campaign spec,\n\
         GET /status/<fp>, /stream/<fp>?from=N&format=csv|jsonl,\n\
         /aggregate/<fp>. Identical re-submissions answer from cache."
    );
    exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut data = PathBuf::from("eend-serve-data");
    let mut workers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("eend-serve: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--data" => data = PathBuf::from(value("--data")),
            "--workers" => {
                workers = Some(value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("eend-serve: --workers needs a number");
                    usage()
                }))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("eend-serve: unknown argument {other:?}");
                usage()
            }
        }
    }
    let executor = match workers {
        Some(n) => Executor::with_workers(n),
        None => Executor::bounded(),
    };
    let handle = serve(&addr, ServeConfig { data_dir: data.clone(), executor })
        .unwrap_or_else(|e| {
            eprintln!("eend-serve: cannot listen on {addr}: {e}");
            exit(1)
        });
    eprintln!(
        "eend-serve: listening on {} (data {}, {} workers)",
        handle.addr(),
        data.display(),
        executor.workers()
    );
    #[cfg(unix)]
    {
        signals::install();
        while !signals::requested() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        eprintln!("eend-serve: shutdown requested, draining");
        // Stops accepting, lets the campaign mid-run finish its
        // in-flight record durably, and joins both service threads —
        // a restart over the same data dir resumes the missing jobs.
        handle.shutdown();
        eprintln!("eend-serve: stopped cleanly");
    }
    #[cfg(not(unix))]
    handle.join();
}
