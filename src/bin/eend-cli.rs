//! `eend-cli` — run one simulation scenario from the command line.
//!
//! ```text
//! eend-cli [--stack TITAN-PC] [--nodes 50] [--area 500] [--flows 10]
//!          [--rate 4.0] [--secs 120] [--seed 1] [--card cabletron]
//!          [--speed 0.0] [--csv] [--list-stacks]
//! ```
//!
//! Defaults reproduce a shortened paper §5.2.1 small-network run.
//! `--csv` emits a single machine-readable line (header on stderr).

use eend::radio::cards;
use eend::sim::SimDuration;
use eend::wireless::{stacks, FlowSpec, Mobility, Placement, Scenario, Simulator};

struct Opts {
    stack: String,
    nodes: usize,
    area: f64,
    flows: usize,
    rate_kbps: f64,
    secs: u64,
    seed: u64,
    card: String,
    speed: f64,
    csv: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: eend-cli [--stack NAME] [--nodes N] [--area METRES] [--flows N]\n\
         \u{20}               [--rate KBPS] [--secs S] [--seed N] [--card NAME]\n\
         \u{20}               [--speed MPS] [--csv] [--list-stacks]\n\
         cards: aironet350 | cabletron | hypothetical | mica2 | leach2 | leach4"
    );
    std::process::exit(2)
}

fn parse() -> Opts {
    let mut o = Opts {
        stack: "TITAN-PC".into(),
        nodes: 50,
        area: 500.0,
        flows: 10,
        rate_kbps: 4.0,
        secs: 120,
        seed: 1,
        card: "cabletron".into(),
        speed: 0.0,
        csv: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("error: {what} needs a value");
            usage()
        });
        match a.as_str() {
            "--stack" => o.stack = val("--stack"),
            "--nodes" => o.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--area" => o.area = val("--area").parse().unwrap_or_else(|_| usage()),
            "--flows" => o.flows = val("--flows").parse().unwrap_or_else(|_| usage()),
            "--rate" => o.rate_kbps = val("--rate").parse().unwrap_or_else(|_| usage()),
            "--secs" => o.secs = val("--secs").parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--card" => o.card = val("--card"),
            "--speed" => o.speed = val("--speed").parse().unwrap_or_else(|_| usage()),
            "--csv" => o.csv = true,
            "--list-stacks" => {
                for s in stacks::all() {
                    println!("{}", s.name);
                }
                std::process::exit(0)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other}");
                usage()
            }
        }
    }
    o
}

fn main() {
    let o = parse();
    let Some(stack) = stacks::by_name(&o.stack) else {
        eprintln!("error: unknown stack {:?} (try --list-stacks)", o.stack);
        std::process::exit(2)
    };
    let card = match o.card.to_ascii_lowercase().as_str() {
        "aironet350" | "aironet" => cards::aironet_350(),
        "cabletron" => cards::cabletron(),
        "hypothetical" => cards::hypothetical_cabletron(),
        "mica2" => cards::mica2(),
        "leach2" => cards::leach_n2(1.0),
        "leach4" => cards::leach_n4(1.0),
        other => {
            eprintln!("error: unknown card {other:?}");
            usage()
        }
    };
    let name = stack.name.clone();
    let mut scenario = Scenario::new(
        Placement::UniformRandom { n: o.nodes, width: o.area, height: o.area },
        card,
        stack,
        FlowSpec::cbr(o.flows, o.rate_kbps),
        SimDuration::from_secs(o.secs),
        o.seed,
    );
    if o.speed > 0.0 {
        scenario =
            scenario.with_mobility(Mobility::random_waypoint((o.speed / 2.0).max(0.1), o.speed, 5.0));
    }
    let m = Simulator::new(&scenario).run();

    if o.csv {
        eprintln!(
            "stack,nodes,area_m,flows,rate_kbps,secs,seed,delivery,goodput_bit_per_j,\
             enetwork_j,transmit_j,control_j,relays,rreq,dsdv_updates,lifetime_1kj_s"
        );
        println!(
            "{},{},{},{},{},{},{},{:.4},{:.1},{:.1},{:.1},{:.1},{},{},{},{:.0}",
            name,
            o.nodes,
            o.area,
            o.flows,
            o.rate_kbps,
            o.secs,
            o.seed,
            m.delivery_ratio(),
            m.energy_goodput_bit_per_j(),
            m.enetwork_j(),
            m.transmit_energy_j(),
            m.control_energy_j(),
            m.data_forwarders,
            m.rreq_tx,
            m.dsdv_update_tx,
            m.lifetime_to_first_death_s(1000.0),
        );
    } else {
        println!("{name} — {} nodes, {}x{} m², {} flows @ {} Kbit/s, {} s (seed {})",
            o.nodes, o.area, o.area, o.flows, o.rate_kbps, o.secs, o.seed);
        println!("  delivery ratio      {:.4} ({}/{} packets)", m.delivery_ratio(), m.data_delivered, m.data_sent);
        println!("  energy goodput      {:.1} bit/J", m.energy_goodput_bit_per_j());
        println!("  Enetwork            {:.1} J (tx {:.1} J, control {:.1} J)", m.enetwork_j(), m.transmit_energy_j(), m.control_energy_j());
        println!("  relays              {}", m.data_forwarders);
        println!("  control frames      {} RREQ, {} RREP, {} RERR, {} DSDV, {} ATIM", m.rreq_tx, m.rrep_tx, m.rerr_tx, m.dsdv_update_tx, m.atim_tx);
        println!("  collisions          {} broadcast, {} RTS; {} link failures", m.broadcast_collisions, m.rts_collisions, m.link_failures);
        println!("  drops               {} no-route, {} link, {} buffer, {} ifq", m.drops_no_route, m.drops_link_failure, m.drops_buffer, m.drops_ifq);
        println!("  lifetime (1 kJ)     {:.0} s to first death, imbalance {:.2}", m.lifetime_to_first_death_s(1000.0), m.energy_imbalance());
    }
}
