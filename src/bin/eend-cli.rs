//! `eend-cli` — run one simulation scenario, or a whole campaign, from
//! the command line.
//!
//! Single-run mode (the default; a shortened paper §5.2.1 run):
//!
//! ```text
//! eend-cli [--stack TITAN-PC] [--nodes 50] [--area 500] [--flows 10]
//!          [--rate 4.0] [--secs 120] [--seed 1] [--card cabletron]
//!          [--speed 0.0] [--traffic cbr|poisson|onoff(5,5)]
//!          [--radio-profile uniform|mixed-hypo|sparse-hypo]
//!          [--csv] [--list-stacks]
//! ```
//!
//! Campaign mode — a declarative scenario-matrix sweep (stacks × rates ×
//! node counts × speeds × traffic models × radio profiles × failure
//! plans × seeds) on the bounded parallel executor:
//!
//! ```text
//! eend-cli campaign [--preset small|large|density|grid]
//!                   [--stacks NAME,NAME,...] [--rates 2,4,6]
//!                   [--node-counts 300,400] [--speeds 0,5]
//!                   [--traffic cbr,poisson,onoff(5,5)]
//!                   [--radio-profile uniform,mixed-hypo]
//!                   [--failures none,3@60,3@60+7@120]
//!                   [--seeds N] [--seed-base N] [--secs S | --full-secs]
//!                   [--workers N] [--csv | --json] [--verify-serial]
//!                   [--out DIR] [--shard I/N] [--limit N]
//!                   [--on-failure abort|skip|retry=N]
//! ```
//!
//! `--traffic` sweeps the packet-arrival process at a fixed offered
//! rate (CBR, Poisson, exponential on/off bursts); `--radio-profile`
//! sweeps named per-node card mixes; `--failures` sweeps node-kill
//! plans (`3@60` kills node 3 at 60 s; `+` joins kills into one plan).
//! All three round-trip through the resumable store's `manifest.json`,
//! so mixed-axis campaigns resume, shard and merge like plain ones.
//!
//! The campaign defaults sweep 4 stacks × 3 rates × 4 seeds (48 jobs) of
//! shortened small networks. `--csv`/`--json` emit one structured record
//! per run on stdout (`--csv` *streams* rows as jobs finish); otherwise
//! aggregated per-cell figures (mean ± 95 % CI) are printed.
//! `--verify-serial` reruns the whole grid on one worker and asserts the
//! records are byte-identical — the executor's determinism contract.
//!
//! `--out DIR` makes the campaign **resumable**: records stream into an
//! on-disk store (JSONL keyed by job id plus a fingerprinted manifest),
//! completed jobs are skipped on re-runs, and a killed run loses at most
//! one partial line. `--shard I/N` runs only every Nth job (0-based
//! shard I) into DIR — run each shard on its own machine, then
//! reassemble:
//!
//! ```text
//! eend-cli campaign merge DIR1 DIR2 ... [--csv | --json]
//! ```
//!
//! `--limit N` stops after N pending jobs (handy for testing resume).
//!
//! `--on-failure` (with `--out`) contains job failures instead of
//! aborting the campaign: `skip` records each failed job durably in the
//! store's `failures.jsonl` and keeps going; `retry=N` re-attempts a
//! failing job up to N times with deterministic exponential backoff
//! before recording it. The policy persists in `manifest.json`, so a
//! resumed store re-attempts exactly the recorded failures under the
//! same policy.
//!
//! Bench mode — the end-to-end performance measurement behind the
//! `BENCH_*.json` perf records and the `perf-smoke` CI job. Runs the
//! [`eend::wireless::presets::mobility_bench`] presets (50/100/200-node
//! random-waypoint networks) on the campaign executor and reports
//! runs/sec, events/sec and peak RSS:
//!
//! ```text
//! eend-cli bench [--runs N] [--workers W] [--nodes 50,100,200] [--json]
//!                [--json-out FILE] [--check BENCH_FILE] [--tolerance 0.30]
//! ```
//!
//! `--json-out FILE` writes the same JSON record to FILE atomically
//! (temp sibling + rename) so a crash mid-write never leaves a torn
//! perf record.
//!
//! `--check` compares the measured runs/sec of every preset against the
//! `"current"` section of a committed perf record and exits non-zero on
//! a regression beyond the tolerance.
//!
//! Loadgen mode — multi-tenant load generation against an in-process
//! `eend-serve` daemon (the measurement behind `BENCH_pr9.json` and the
//! `loadgen-smoke` CI job). Submits N campaigns concurrently over real
//! TCP with M `/stream` subscribers each, and reports submits/s,
//! campaigns-completed/s, time-to-first-record, and p50/p99 subscriber
//! fan-out latency:
//!
//! ```text
//! eend-cli loadgen [--campaigns N] [--subscribers M] [--seeds K]
//!                  [--secs S] [--workers W] [--serial]
//!                  [--curve 1,2,4,8] [--json] [--json-out FILE]
//! ```
//!
//! `--serial` submits the same campaigns one at a time, waiting for
//! each to finish — the PR 7 single-runner baseline. `--curve` runs a
//! serial + concurrent pair per listed concurrency level and emits the
//! scaling record. SIGTERM/ctrl-c mid-run drains the daemon cleanly
//! (in-flight records land durably) and exits 0.
//!
//! Design mode — the design↔simulate loop: deterministic metaheuristic
//! search over designs for a named case-study instance, scored through a
//! cached evaluation oracle:
//!
//! ```text
//! eend-cli design [--instance grid7|random30|random50]
//!                 [--heuristic all|mtpr|mtpr+|joint|idlefirst|mpc|lifetime]
//!                 [--search multistart|anneal] [--seed N] [--budget K]
//!                 [--objective energy|goodput|lifetime] [--oracle fluid|sim]
//!                 [--secs S] [--sim-seeds N] [--out DIR] [--check-improves]
//!                 [--list-instances]
//! ```
//!
//! The JSONL search trace (one line per oracle evaluation) streams to
//! stdout; the summary (per-heuristic baselines, winner, cache counters)
//! goes to stderr. `--out DIR` additionally persists `trace.jsonl` and
//! `winner.json` (both written atomically) and memoizes every score in
//! `DIR/cache/` keyed by design fingerprint — an identical re-run answers
//! entirely from the cache, executing **zero** evaluations, and replays
//! the byte-identical trace. `--heuristic NAME` skips the search and
//! scores that single constructive design (a baseline probe).
//! `--check-improves` exits non-zero if the search winner is worse than
//! the best single-shot heuristic — the loop-closing guarantee CI holds.

use eend::campaign::serve::{serve, ServeConfig};
use eend::campaign::store::Manifest;
use eend::campaign::{
    merge_stores, merge_stores_streaming, write_atomic, BaseScenario, CampaignResult,
    CampaignSpec, CsvSink, Executor, FailurePlan, FailurePolicy, ResultStore, RunOptions,
};
use eend::radio::cards;
use eend::sim::SimDuration;
use eend::stats::render_figure;
use eend::wireless::radio_profiles::{self, RadioProfile};
use eend::wireless::{
    presets, stacks, FlowSpec, Mobility, Placement, Scenario, Simulator, TrafficModel,
};

struct Opts {
    stack: String,
    nodes: usize,
    area: f64,
    flows: usize,
    rate_kbps: f64,
    secs: u64,
    seed: u64,
    card: String,
    speed: f64,
    traffic: TrafficModel,
    radio_profile: Option<String>,
    csv: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: eend-cli [--stack NAME] [--nodes N] [--area METRES] [--flows N]\n\
         \u{20}               [--rate KBPS] [--secs S] [--seed N] [--card NAME]\n\
         \u{20}               [--speed MPS] [--traffic MODEL] [--radio-profile NAME]\n\
         \u{20}               [--csv] [--list-stacks]\n\
         cards: aironet350 | cabletron | hypothetical | mica2 | leach2 | leach4\n\
         traffic models: cbr | poisson | onoff | onoff(ON_S,OFF_S)\n\
         radio profiles: uniform | mixed-hypo | sparse-hypo"
    );
    std::process::exit(2)
}

fn parse() -> Opts {
    let mut o = Opts {
        stack: "TITAN-PC".into(),
        nodes: 50,
        area: 500.0,
        flows: 10,
        rate_kbps: 4.0,
        secs: 120,
        seed: 1,
        card: "cabletron".into(),
        speed: 0.0,
        traffic: TrafficModel::Cbr,
        radio_profile: None,
        csv: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("error: {what} needs a value");
            usage()
        });
        match a.as_str() {
            "--stack" => o.stack = val("--stack"),
            "--nodes" => o.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--area" => o.area = val("--area").parse().unwrap_or_else(|_| usage()),
            "--flows" => o.flows = val("--flows").parse().unwrap_or_else(|_| usage()),
            "--rate" => o.rate_kbps = val("--rate").parse().unwrap_or_else(|_| usage()),
            "--secs" => o.secs = val("--secs").parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--card" => o.card = val("--card"),
            "--speed" => o.speed = val("--speed").parse().unwrap_or_else(|_| usage()),
            "--traffic" => {
                let raw = val("--traffic");
                o.traffic = TrafficModel::parse(&raw).unwrap_or_else(|| {
                    eprintln!("error: unknown traffic model {raw:?}");
                    usage()
                })
            }
            "--radio-profile" => o.radio_profile = Some(val("--radio-profile")),
            "--csv" => o.csv = true,
            "--list-stacks" => {
                for s in stacks::all() {
                    println!("{}", s.name);
                }
                std::process::exit(0)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other}");
                usage()
            }
        }
    }
    o
}

/// Options of the `campaign` subcommand. `rates` stays `None` until the
/// user passes `--rates`, so the default can adapt to the other axes
/// (a density or speed sweep must not silently multiply the grid by
/// rates the scenario builder never reads).
struct CampaignOpts {
    preset: BaseScenario,
    stacks: Vec<String>,
    rates: Option<Vec<f64>>,
    node_counts: Vec<usize>,
    speeds: Vec<f64>,
    traffic: Vec<TrafficModel>,
    radio_profiles: Vec<RadioProfile>,
    failures: Vec<FailurePlan>,
    seeds: u64,
    seed_base: u64,
    secs: Option<u64>,
    workers: Option<usize>,
    csv: bool,
    json: bool,
    verify_serial: bool,
    out: Option<String>,
    shard: (usize, usize),
    limit: Option<usize>,
    on_failure: Option<FailurePolicy>,
}

fn campaign_usage() -> ! {
    eprintln!(
        "usage: eend-cli campaign [--preset small|large|density|grid]\n\
         \u{20}                        [--stacks NAME,NAME,...] [--rates 2,4,6]\n\
         \u{20}                        [--node-counts 300,400] [--speeds 0,5]\n\
         \u{20}                        [--traffic cbr,poisson,onoff(5,5)]\n\
         \u{20}                        [--radio-profile uniform,mixed-hypo,sparse-hypo]\n\
         \u{20}                        [--failures none,NODE@SECS[+NODE@SECS...],...]\n\
         \u{20}                        [--seeds N] [--seed-base N] [--secs S | --full-secs]\n\
         \u{20}                        [--workers N] [--csv | --json] [--verify-serial]\n\
         \u{20}                        [--out DIR] [--shard I/N] [--limit N]\n\
         \u{20}                        [--on-failure abort|skip|retry=N]\n\
         \u{20}      eend-cli campaign merge DIR1 DIR2 ... [--csv | --json]\n\
         defaults: small preset, TITAN-PC/DSR-ODPM-PC/DSR-ODPM/DSR-Active,\n\
         rates 2,4,6 Kbit/s, 4 seeds, 60 s — a 48-job grid.\n\
         --traffic sweeps the arrival process (same offered rate per model);\n\
         --radio-profile sweeps per-node card mixes; --failures sweeps kill\n\
         \u{20} plans, e.g. --failures none,3@60,3@60+7@120 (node 3 dies at 60 s).\n\
         --full-secs drops the duration cap (the presets' paper-scale 600/900 s).\n\
         --out DIR streams records into a resumable on-disk store; re-running\n\
         \u{20} the same campaign skips completed jobs. --shard I/N runs only\n\
         \u{20} shard I of N (merge the shard stores afterwards); --limit N stops\n\
         \u{20} after N pending jobs. --on-failure (with --out) contains job\n\
         \u{20} failures: skip records them in failures.jsonl and keeps going,\n\
         \u{20} retry=N re-attempts with exponential backoff first; the store\n\
         \u{20} remembers the policy, and resuming re-attempts recorded failures."
    );
    std::process::exit(2)
}

/// Parses one `--failures` element: `none`, or `+`-joined `NODE@SECS`
/// kill events (the element's literal spelling becomes the plan label).
fn parse_failure_plan(raw: &str) -> Option<FailurePlan> {
    let spec = raw.trim();
    if spec.eq_ignore_ascii_case("none") {
        return Some(FailurePlan::none());
    }
    let mut kills = Vec::new();
    for kill in spec.split('+') {
        let (node, at_s) = kill.split_once('@')?;
        let node: usize = node.trim().parse().ok()?;
        let at_s: f64 = at_s.trim().parse().ok()?;
        if !(at_s.is_finite() && at_s >= 0.0) {
            return None;
        }
        kills.push((at_s, node));
    }
    (!kills.is_empty()).then(|| FailurePlan { label: spec.to_owned(), kills })
}

/// Splits a `--stacks` list on commas that sit outside parentheses, so
/// names like `DSDVH-ODPM(5,10)-PSM` survive intact.
fn split_stacks(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in raw.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c)
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c)
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_owned());
                }
                cur.clear()
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

fn parse_list<T: std::str::FromStr>(what: &str, raw: &str, usage: fn() -> !) -> Vec<T> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: bad {what} element {s:?}");
                usage()
            })
        })
        .collect()
}

fn parse_campaign(args: impl Iterator<Item = String>) -> CampaignOpts {
    let mut o = CampaignOpts {
        preset: BaseScenario::Small,
        stacks: vec![
            "TITAN-PC".into(),
            "DSR-ODPM-PC".into(),
            "DSR-ODPM".into(),
            "DSR-Active".into(),
        ],
        rates: None,
        node_counts: Vec::new(),
        speeds: Vec::new(),
        traffic: Vec::new(),
        radio_profiles: Vec::new(),
        failures: Vec::new(),
        seeds: 4,
        seed_base: 0,
        secs: Some(60),
        workers: None,
        csv: false,
        json: false,
        verify_serial: false,
        out: None,
        shard: (0, 1),
        limit: None,
        on_failure: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                campaign_usage()
            })
        };
        match a.as_str() {
            "--preset" => {
                let raw = val("--preset");
                o.preset = BaseScenario::parse(&raw).unwrap_or_else(|| {
                    eprintln!("error: unknown preset {raw:?}");
                    campaign_usage()
                })
            }
            "--stacks" => o.stacks = split_stacks(&val("--stacks")),
            "--rates" => o.rates = Some(parse_list("--rates", &val("--rates"), campaign_usage)),
            "--node-counts" => {
                o.node_counts = parse_list("--node-counts", &val("--node-counts"), campaign_usage)
            }
            "--speeds" => o.speeds = parse_list("--speeds", &val("--speeds"), campaign_usage),
            "--traffic" => {
                // Parenthesis-aware split so onoff(5,5) survives intact.
                o.traffic = split_stacks(&val("--traffic"))
                    .iter()
                    .map(|m| {
                        TrafficModel::parse(m).unwrap_or_else(|| {
                            eprintln!("error: unknown traffic model {m:?}");
                            campaign_usage()
                        })
                    })
                    .collect()
            }
            "--radio-profile" => {
                o.radio_profiles = val("--radio-profile")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|name| {
                        radio_profiles::by_name(name).unwrap_or_else(|| {
                            eprintln!("error: unknown radio profile {name:?}");
                            campaign_usage()
                        })
                    })
                    .collect()
            }
            "--failures" => {
                o.failures = val("--failures")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|p| {
                        parse_failure_plan(p).unwrap_or_else(|| {
                            eprintln!(
                                "error: bad failure plan {p:?} (want none or NODE@SECS[+NODE@SECS...])"
                            );
                            campaign_usage()
                        })
                    })
                    .collect()
            }
            "--seeds" => o.seeds = val("--seeds").parse().unwrap_or_else(|_| campaign_usage()),
            "--seed-base" => {
                o.seed_base = val("--seed-base").parse().unwrap_or_else(|_| campaign_usage())
            }
            "--secs" => o.secs = Some(val("--secs").parse().unwrap_or_else(|_| campaign_usage())),
            "--full-secs" => o.secs = None,
            "--workers" => {
                o.workers = Some(val("--workers").parse().unwrap_or_else(|_| campaign_usage()))
            }
            "--csv" => o.csv = true,
            "--json" => o.json = true,
            "--verify-serial" => o.verify_serial = true,
            "--out" => o.out = Some(val("--out")),
            "--shard" => {
                let raw = val("--shard");
                let parsed = raw.split_once('/').and_then(|(i, n)| {
                    Some((i.trim().parse().ok()?, n.trim().parse().ok()?))
                });
                match parsed {
                    Some((i, n)) if n > 0 && i < n => o.shard = (i, n),
                    _ => {
                        eprintln!("error: --shard wants I/N with I < N, got {raw:?}");
                        campaign_usage()
                    }
                }
            }
            "--limit" => {
                o.limit = Some(val("--limit").parse().unwrap_or_else(|_| campaign_usage()))
            }
            "--on-failure" => {
                let raw = val("--on-failure");
                o.on_failure = Some(FailurePolicy::parse(&raw).unwrap_or_else(|| {
                    eprintln!("error: bad --on-failure {raw:?} (want abort, skip, or retry=N)");
                    campaign_usage()
                }))
            }
            "--help" | "-h" => campaign_usage(),
            other => {
                eprintln!("error: unknown campaign argument {other}");
                campaign_usage()
            }
        }
    }
    if o.stacks.is_empty() || o.seeds == 0 {
        eprintln!("error: campaign needs at least one stack and one seed");
        campaign_usage()
    }
    if (o.shard != (0, 1) || o.limit.is_some()) && o.out.is_none() {
        eprintln!("error: --shard and --limit need an on-disk store (--out DIR)");
        campaign_usage()
    }
    if o.on_failure.is_some() && o.out.is_none() {
        eprintln!("error: --on-failure needs an on-disk store (--out DIR) to record failures");
        campaign_usage()
    }
    if o.out.is_some() && o.verify_serial {
        eprintln!("error: --verify-serial applies to in-memory runs (drop --out)");
        campaign_usage()
    }
    // Reject axes the chosen preset never reads: they would multiply the
    // grid with byte-identical duplicate runs and shrink the reported
    // CIs by sqrt(duplicates).
    if o.preset == BaseScenario::Density && o.rates.is_some() {
        eprintln!("error: --rates does not apply to --preset density (it is fixed at 4 Kbit/s)");
        campaign_usage()
    }
    if o.preset != BaseScenario::Density && !o.node_counts.is_empty() {
        eprintln!("error: --node-counts only applies to --preset density");
        campaign_usage()
    }
    if o.csv && o.json {
        eprintln!("error: pick one of --csv and --json");
        campaign_usage()
    }
    o
}

fn die(e: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1)
}

fn run_campaign(o: CampaignOpts) {
    let stack_list: Vec<_> = o
        .stacks
        .iter()
        .map(|name| {
            stacks::by_name(name).unwrap_or_else(|| {
                eprintln!("error: unknown stack {name:?} (try eend-cli --list-stacks)");
                std::process::exit(2)
            })
        })
        .collect();
    // Default rate axis: the usual 2/4/6 Kbit/s sweep — unless another
    // axis is the sweep (density or speeds), where a rate sweep would
    // either duplicate runs or smear the aggregation; there a single
    // 4 Kbit/s (the paper's mid rate) is the default.
    let rates = match &o.rates {
        Some(r) => r.clone(),
        None if o.preset == BaseScenario::Density => Vec::new(),
        None if o.speeds.len() > 1 => vec![4.0],
        None => vec![2.0, 4.0, 6.0],
    };
    let mut spec = CampaignSpec::new("cli", o.preset)
        .stacks(stack_list)
        .rates(rates)
        .node_counts(o.node_counts.clone())
        .speeds(o.speeds.clone())
        .traffic(o.traffic.clone())
        .radio_profiles(o.radio_profiles.clone())
        .failures(o.failures.clone())
        .seeds(o.seeds)
        .seed_base(o.seed_base);
    if let Some(secs) = o.secs {
        spec = spec.secs(secs);
    }

    let executor = o.workers.map(Executor::with_workers).unwrap_or_else(Executor::bounded);
    eprintln!(
        "campaign: {} jobs ({} stacks) on {} workers",
        spec.job_count(),
        spec.stacks.len(),
        executor.workers()
    );
    if let Some(dir) = o.out.clone() {
        return run_campaign_store(&o, &spec, &executor, &dir);
    }
    let start = std::time::Instant::now();
    if o.csv && !o.verify_serial {
        // Stream rows to stdout as jobs complete (in job order): peak
        // memory is the executor's reorder window, not the grid.
        let jobs = spec.expand();
        let stdout = std::io::stdout();
        let mut sink = CsvSink::new(&spec.name, stdout.lock());
        executor.run_streaming(&jobs, &mut sink).unwrap_or_else(|e| die(&e));
        eprintln!("campaign: {} records in {:.2?} (streamed)", jobs.len(), start.elapsed());
        return;
    }
    let result = executor.run(&spec);
    eprintln!("campaign: {} records in {:.2?}", result.records.len(), start.elapsed());

    if o.verify_serial {
        let serial = Executor::with_workers(1).run(&spec);
        assert_eq!(
            result, serial,
            "parallel and serial campaign records differ — determinism bug"
        );
        assert_eq!(format!("{result:?}"), format!("{serial:?}"));
        eprintln!(
            "campaign: serial re-run on 1 worker is byte-identical ({} records)",
            serial.records.len()
        );
    }

    emit_result(&result, o.csv, o.json, o.preset, o.speeds.len() > 1);
}

/// Resumable store path: stream missing jobs into `dir`, then (when the
/// whole campaign is durable and unsharded) emit like an in-memory run.
fn run_campaign_store(o: &CampaignOpts, spec: &CampaignSpec, executor: &Executor, dir: &str) {
    let (si, sc) = o.shard;
    let shard_jobs = if sc > 1 { spec.shard(si, sc) } else { spec.expand() };
    let mut manifest = Manifest::for_spec(spec, si, sc);
    // An explicit --on-failure is persisted into the manifest; without
    // the flag the store keeps whatever policy it already recorded.
    manifest.on_failure = o.on_failure.as_ref().map(|p| p.label());
    let mut store = ResultStore::open(dir, manifest).unwrap_or_else(|e| die(&e));
    let done = shard_jobs.len() - store.pending(&shard_jobs).len();
    eprintln!(
        "campaign: store {dir}: shard {si}/{sc} owns {} job(s), {done} already durable",
        shard_jobs.len()
    );
    let start = std::time::Instant::now();
    let opts = RunOptions { limit: o.limit, policy: store.policy(), cancel: None };
    let outcome =
        store.run_with(executor, &shard_jobs, &opts, |_| {}).unwrap_or_else(|e| die(&e));
    eprintln!("campaign: ran {} job(s) in {:.2?}", outcome.ran, start.elapsed());
    if outcome.failed > 0 {
        eprintln!(
            "campaign: {} job(s) failed — recorded in {dir}/failures.jsonl, \
             re-run the same command to re-attempt them",
            outcome.failed
        );
    }
    let pending = store.pending(&shard_jobs).len();
    if pending > 0 {
        eprintln!("campaign: {pending} job(s) still pending — re-run the same command to resume");
        return;
    }
    if sc > 1 {
        eprintln!(
            "campaign: shard {si}/{sc} complete — reassemble with:\n  \
             eend-cli campaign merge <all {sc} shard dirs> [--csv|--json]"
        );
        return;
    }
    let result = store.assemble(&spec.expand()).unwrap_or_else(|e| die(&e));
    emit_result(&result, o.csv, o.json, o.preset, o.speeds.len() > 1);
}

/// Prints a finished campaign: raw CSV, raw JSON, or the aggregated
/// per-cell figures.
fn emit_result(
    result: &CampaignResult,
    csv: bool,
    json: bool,
    preset: BaseScenario,
    multi_speed: bool,
) {
    if csv {
        print!("{}", result.to_csv());
        return;
    }
    if json {
        println!("{}", result.to_json());
        return;
    }
    // Aggregated per-cell view: pick the x axis that was actually swept,
    // then partition the records on every *other* swept axis — numeric
    // (rate, nodes, speed) and categorical (traffic model, radio
    // profile, failure plan) alike — so no cell pools samples from
    // different grid coordinates (a CI over mixed rates or mixed
    // workload shapes would measure axis spread, not seed noise).
    type Axis = (&'static str, fn(&eend::campaign::GridPoint) -> f64);
    type CatAxis = (&'static str, fn(&eend::campaign::GridPoint) -> &str);
    let axes: [Axis; 3] = [
        ("rate Kbit/s", |p| p.rate_kbps),
        ("node count", |p| p.nodes as f64),
        ("speed m/s", |p| p.speed_mps),
    ];
    let cat_axes: [CatAxis; 3] = [
        ("traffic", |p| &p.traffic),
        ("radio", |p| &p.radio),
        ("failure", |p| &p.failure),
    ];
    let swept = |ax: &Axis| -> Vec<f64> {
        let mut vals: Vec<f64> = Vec::new();
        for r in &result.records {
            let v = ax.1(&r.point);
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        vals
    };
    let x_idx = if preset == BaseScenario::Density {
        1
    } else if multi_speed {
        2
    } else {
        0
    };
    let (x_name, x) = axes[x_idx];
    // Cartesian product of the other axes' distinct values (almost
    // always a single empty combination).
    let mut num_partitions: Vec<Vec<(Axis, f64)>> = vec![Vec::new()];
    for (i, ax) in axes.iter().enumerate() {
        if i == x_idx {
            continue;
        }
        let vals = swept(ax);
        if vals.len() > 1 {
            num_partitions = num_partitions
                .into_iter()
                .flat_map(|combo| {
                    vals.iter().map(move |&v| {
                        let mut c = combo.clone();
                        c.push((*ax, v));
                        c
                    })
                })
                .collect();
        }
    }
    type Partition = (Vec<(Axis, f64)>, Vec<(CatAxis, String)>);
    let mut partitions: Vec<Partition> =
        num_partitions.into_iter().map(|n| (n, Vec::new())).collect();
    for ax in &cat_axes {
        let mut vals: Vec<&str> = Vec::new();
        for r in &result.records {
            let v = ax.1(&r.point);
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        if vals.len() > 1 {
            partitions = partitions
                .into_iter()
                .flat_map(|(num, cat)| {
                    vals.iter()
                        .map(|v| {
                            let mut c = cat.clone();
                            c.push((*ax, (*v).to_owned()));
                            (num.clone(), c)
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
        }
    }
    for (num, cat) in &partitions {
        let subset = eend::campaign::CampaignResult {
            campaign: result.campaign.clone(),
            records: result
                .records
                .iter()
                .filter(|r| {
                    num.iter().all(|(ax, v)| ax.1(&r.point) == *v)
                        && cat.iter().all(|(ax, v)| ax.1(&r.point) == v)
                })
                .cloned()
                .collect(),
        };
        let suffix: String = num
            .iter()
            .map(|((name, _), v)| format!(", {name} = {v}"))
            .chain(cat.iter().map(|((name, _), v)| format!(", {name} = {v}")))
            .collect();
        let delivery = subset.series(x, |m| m.delivery_ratio());
        println!("{}", render_figure(&format!("delivery ratio (x = {x_name}{suffix})"), &delivery));
        let goodput = subset.series(x, |m| m.energy_goodput_bit_per_j());
        println!("{}", render_figure(&format!("energy goodput bit/J (x = {x_name}{suffix})"), &goodput));
        let energy = subset.series(x, |m| m.enetwork_j());
        println!("{}", render_figure(&format!("Enetwork J (x = {x_name}{suffix})"), &energy));
    }
}

/// Options of the `campaign merge` subcommand.
struct MergeOpts {
    dirs: Vec<String>,
    csv: bool,
    json: bool,
}

fn merge_usage() -> ! {
    eprintln!("usage: eend-cli campaign merge DIR1 DIR2 ... [--csv | --json]");
    std::process::exit(2)
}

fn parse_merge(args: impl Iterator<Item = String>) -> MergeOpts {
    let mut o = MergeOpts { dirs: Vec::new(), csv: false, json: false };
    for a in args {
        match a.as_str() {
            "--csv" => o.csv = true,
            "--json" => o.json = true,
            "--help" | "-h" => merge_usage(),
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown merge argument {flag}");
                merge_usage()
            }
            dir => o.dirs.push(dir.to_owned()),
        }
    }
    if o.dirs.is_empty() {
        eprintln!("error: merge needs at least one store directory");
        merge_usage()
    }
    if o.csv && o.json {
        eprintln!("error: pick one of --csv and --json");
        merge_usage()
    }
    o
}

/// Reassembles shard stores into one campaign result. The campaign's
/// spec is rebuilt from the first manifest's recorded axes, so the grid
/// does not have to be re-stated; fingerprints guard against mixing
/// stores of different campaigns.
fn run_merge(o: MergeOpts) {
    let stores: Vec<ResultStore> = o
        .dirs
        .iter()
        .map(|d| ResultStore::open_existing(d).unwrap_or_else(|e| die(&e)))
        .collect();
    let first = stores[0].manifest().clone();
    let Some(axes) = first.axes.clone() else {
        eprintln!(
            "error: store {} records no spec axes (not CLI-launched); \
             merge it through the library API instead",
            o.dirs[0]
        );
        std::process::exit(2)
    };
    let spec = axes.to_spec(&first.campaign).unwrap_or_else(|e| die(&e));
    let jobs = spec.expand();
    let refs: Vec<&ResultStore> = stores.iter().collect();
    if o.csv {
        // CSV needs no cross-record aggregation, so drive the shard
        // records straight to stdout: one in-flight record per store,
        // never the whole grid in memory.
        let stdout = std::io::stdout();
        let mut sink = CsvSink::new(&first.campaign, stdout.lock());
        merge_stores_streaming(&refs, &jobs, &mut sink).unwrap_or_else(|e| die(&e));
        eprintln!(
            "merge: {} record(s) streamed from {} store(s)",
            jobs.len(),
            stores.len()
        );
        return;
    }
    let result = merge_stores(&refs, &jobs).unwrap_or_else(|e| die(&e));
    eprintln!(
        "merge: {} record(s) reassembled from {} store(s)",
        result.records.len(),
        stores.len()
    );
    emit_result(&result, o.csv, o.json, spec.base, spec.speeds_mps.len() > 1);
}

/// Options of the `bench` subcommand.
struct BenchOpts {
    runs: u64,
    workers: Option<usize>,
    nodes: Vec<usize>,
    scale: Vec<usize>,
    json: bool,
    json_out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    allow_missing_presets: bool,
}

fn bench_usage() -> ! {
    eprintln!(
        "usage: eend-cli bench [--runs N] [--workers W] [--nodes 50,100,200]\n\
         \u{20}                     [--scale 1k,10k,100k] [--json] [--json-out FILE]\n\
         \u{20}                     [--check BENCH_FILE]\n\
         \u{20}                     [--tolerance 0.30] [--allow-missing-presets]\n\
         \u{20}  --json-out writes the --json record to FILE atomically (temp file\n\
         \u{20}  + rename), so a killed bench never leaves a torn record behind\n\
         \u{20}  --scale runs the mobility_scale grid presets (1k/10k/100k, or a\n\
         \u{20}  bare grid side length); passing it alone skips the default --nodes set\n\
         \u{20}  --allow-missing-presets lets --check pass when the record gates\n\
         \u{20}  presets this invocation did not run (a deliberately narrowed sweep)"
    );
    std::process::exit(2)
}

/// Parses a `--scale` list entry to a grid side length: the named sizes
/// `1k`/`10k`/`100k`, or a bare side (e.g. `64` for a 64×64 grid).
fn parse_scale_list(raw: &str) -> Vec<usize> {
    raw.split(',')
        .map(|tok| match tok.trim() {
            "1k" => 32,
            "10k" => 100,
            "100k" => 316,
            other => other.parse().unwrap_or_else(|_| {
                eprintln!("error: --scale entry {other:?} is not 1k/10k/100k or a grid side");
                bench_usage()
            }),
        })
        .collect()
}

/// The preset name `mobility_scale(side)` runs under — the named family
/// members for the three blessed sides, a generic name otherwise.
fn scale_preset_name(side: usize) -> String {
    match side {
        32 => "mobility1k".to_owned(),
        100 => "mobility10k".to_owned(),
        316 => "mobility100k".to_owned(),
        other => format!("mobility_grid{other}"),
    }
}

fn parse_bench(args: impl Iterator<Item = String>) -> BenchOpts {
    let mut o = BenchOpts {
        runs: 3,
        workers: None,
        nodes: Vec::new(),
        scale: Vec::new(),
        json: false,
        json_out: None,
        check: None,
        tolerance: 0.30,
        allow_missing_presets: false,
    };
    let mut nodes_given = false;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                bench_usage()
            })
        };
        match a.as_str() {
            "--runs" => o.runs = val("--runs").parse().unwrap_or_else(|_| bench_usage()),
            "--workers" => {
                o.workers = Some(val("--workers").parse().unwrap_or_else(|_| bench_usage()))
            }
            "--nodes" => {
                o.nodes = parse_list("--nodes", &val("--nodes"), bench_usage);
                nodes_given = true;
            }
            "--scale" => o.scale = parse_scale_list(&val("--scale")),
            "--json" => o.json = true,
            "--json-out" => o.json_out = Some(val("--json-out")),
            "--check" => o.check = Some(val("--check")),
            "--tolerance" => {
                o.tolerance = val("--tolerance").parse().unwrap_or_else(|_| bench_usage())
            }
            "--allow-missing-presets" => o.allow_missing_presets = true,
            "--help" | "-h" => bench_usage(),
            other => {
                eprintln!("error: unknown bench argument {other}");
                bench_usage()
            }
        }
    }
    // The default preset set applies only when neither axis was chosen:
    // `--scale` alone should not drag the 50/100/200 sweep along.
    if !nodes_given && o.scale.is_empty() {
        o.nodes = vec![50, 100, 200];
    }
    if o.runs == 0 || (o.nodes.is_empty() && o.scale.is_empty()) {
        bench_usage()
    }
    if !(0.0..1.0).contains(&o.tolerance) {
        eprintln!(
            "error: --tolerance must be a fraction in [0, 1), e.g. 0.30 for 30% (got {})",
            o.tolerance
        );
        bench_usage()
    }
    o
}

/// Peak resident set size of this process in kB (`VmHWM`), 0 when the
/// platform does not expose it.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

struct PresetResult {
    name: String,
    nodes: usize,
    runs: u64,
    wall_s: f64,
    runs_per_sec: f64,
    events_per_sec: f64,
    events_total: u64,
    delivery_mean: f64,
    /// `VmHWM` sampled at this preset's boundary, i.e. the process-wide
    /// high-water mark *after* this preset ran. The first preset whose
    /// value jumps is the one that set the peak; a single end-of-process
    /// reading cannot attribute it.
    peak_rss_kb: u64,
}

fn run_bench(o: BenchOpts) {
    let executor = o.workers.map(Executor::with_workers).unwrap_or_else(Executor::bounded);
    // (name, node count, per-seed scenario constructor) for both preset
    // families: the mobility_bench density sweep and the fixed-traffic
    // mobility_scale grids.
    type Ctor = Box<dyn Fn(u64) -> eend::wireless::Scenario>;
    let mut specs: Vec<(String, usize, Ctor)> = Vec::new();
    for &n in &o.nodes {
        specs.push((
            format!("mobility{n}"),
            n,
            Box::new(move |seed| presets::mobility_bench(stacks::titan_pc(), n, seed)),
        ));
    }
    for &side in &o.scale {
        specs.push((
            scale_preset_name(side),
            side * side,
            Box::new(move |seed| presets::mobility_scale(stacks::titan_pc(), side, seed)),
        ));
    }
    eprintln!(
        "bench: {} preset(s) x {} run(s) on {} worker(s)",
        specs.len(),
        o.runs,
        executor.workers()
    );
    let mut results = Vec::new();
    for (name, nodes, ctor) in specs {
        // One deterministic scenario per seed; the executor is the same
        // bounded pool campaigns run on, so `--workers` measures the
        // parallel path end to end.
        let scenarios: Vec<_> = (1..=o.runs).map(&ctor).collect();
        let start = std::time::Instant::now();
        let outcomes = executor.par_map(scenarios.len(), |i| {
            Simulator::new(&scenarios[i]).run_with_stats()
        });
        let wall_s = start.elapsed().as_secs_f64();
        let events_total: u64 = outcomes.iter().map(|(_, q)| q.scheduled_total).sum();
        let delivery_mean = outcomes.iter().map(|(m, _)| m.delivery_ratio()).sum::<f64>()
            / outcomes.len() as f64;
        results.push(PresetResult {
            name,
            nodes,
            runs: o.runs,
            wall_s,
            runs_per_sec: o.runs as f64 / wall_s,
            events_per_sec: events_total as f64 / wall_s,
            events_total,
            delivery_mean,
            peak_rss_kb: peak_rss_kb(),
        });
    }

    if o.json || o.json_out.is_some() {
        let record = render_bench_json(&o, &executor, &results);
        if o.json {
            print!("{record}");
        }
        if let Some(path) = &o.json_out {
            write_atomic(std::path::Path::new(path), record.as_bytes())
                .unwrap_or_else(|e| die(&e));
            eprintln!("bench: wrote {path}");
        }
    }
    if !o.json {
        for r in &results {
            println!(
                "{:12} {:>7.2} runs/s  {:>12.0} events/s  ({} runs in {:.3} s, delivery {:.3}, \
                 rss {} kB)",
                r.name, r.runs_per_sec, r.events_per_sec, r.runs, r.wall_s, r.delivery_mean,
                r.peak_rss_kb
            );
        }
        println!("peak RSS: {} kB", peak_rss_kb());
    }

    if let Some(path) = &o.check {
        check_against_record(path, &results, o.tolerance, o.allow_missing_presets);
    }
}

/// Renders the `eend-bench/1` JSON record — one string, so stdout
/// (`--json`) and the atomic file write (`--json-out`) share bytes.
fn render_bench_json(o: &BenchOpts, executor: &Executor, results: &[PresetResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"eend-bench/1\",");
    let _ = writeln!(out, "  \"workers\": {},", executor.workers());
    let _ = writeln!(out, "  \"runs_per_preset\": {},", o.runs);
    let _ = writeln!(out, "  \"peak_rss_kb\": {},", peak_rss_kb());
    let _ = writeln!(out, "  \"presets\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"nodes\": {}, \"runs\": {}, \"wall_s\": {:.4}, \
             \"runs_per_sec\": {:.2}, \"events_per_sec\": {:.0}, \"events_total\": {}, \
             \"delivery_mean\": {:.4}, \"peak_rss_kb\": {}}}{}",
            r.name,
            r.nodes,
            r.runs,
            r.wall_s,
            r.runs_per_sec,
            r.events_per_sec,
            r.events_total,
            r.delivery_mean,
            r.peak_rss_kb,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Extracts `(preset name, runs_per_sec)` pairs from the `"current"`
/// section of a committed perf record (falling back to the whole file
/// when no such section exists). The records are emitted by this binary,
/// so a line-oriented scan is sufficient — no JSON dependency.
fn parse_record_rates(text: &str) -> Vec<(String, f64)> {
    let scope = match text.find("\"current\"") {
        Some(at) => &text[at..],
        None => text,
    };
    let mut out = Vec::new();
    for chunk in scope.split("\"name\":").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else { continue };
        let Some(rate_at) = chunk.find("\"runs_per_sec\":") else { continue };
        let tail = &chunk[rate_at + "\"runs_per_sec\":".len()..];
        let num: String = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(rate) = num.parse::<f64>() {
            out.push((name.to_owned(), rate));
        }
    }
    out
}

fn check_against_record(
    path: &str,
    results: &[PresetResult],
    tolerance: f64,
    allow_missing: bool,
) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read perf record {path}: {e}");
        std::process::exit(2)
    });
    let recorded = parse_record_rates(&text);
    if recorded.is_empty() {
        eprintln!("error: no preset rates found in {path}");
        std::process::exit(2)
    }
    let mut failed = false;
    let mut gated = 0usize;
    let mut skipped = 0usize;
    for r in results {
        // A preset missing from the record is tolerated individually —
        // it was added since the record was written, so there is nothing
        // to compare against yet. The presets the record does know are
        // still gated; the gate only goes vacuous when *every* preset is
        // new, which the summary line below makes visible.
        let Some((_, rate)) = recorded.iter().find(|(n, _)| *n == r.name) else {
            eprintln!("check: {:12} not in record — new preset, gated from the next record on", r.name);
            skipped += 1;
            continue;
        };
        let floor = rate * (1.0 - tolerance);
        let ok = r.runs_per_sec >= floor;
        eprintln!(
            "check: {:12} {:>7.2} runs/s vs recorded {:>7.2} (floor {:>7.2}) {}",
            r.name,
            r.runs_per_sec,
            rate,
            floor,
            if ok { "ok" } else { "REGRESSION" }
        );
        gated += 1;
        failed |= !ok;
    }
    // The converse gap: presets the record gates that this invocation
    // never ran. Silently ignoring them would let a narrowed --nodes or
    // --scale sweep shrink the gate without anyone noticing.
    let mut unmeasured = 0usize;
    for (name, _) in &recorded {
        if results.iter().all(|r| r.name != *name) {
            eprintln!(
                "check: {name:12} in record but not measured this run{}",
                if allow_missing { " (allowed)" } else { "" }
            );
            unmeasured += 1;
        }
    }
    eprintln!(
        "check: {gated} preset(s) gated, {skipped} absent from the record, \
         {unmeasured} recorded but unmeasured"
    );
    if unmeasured > 0 && !allow_missing {
        eprintln!(
            "check: the record gates preset(s) this run did not measure; \
             re-run the full sweep or pass --allow-missing-presets to narrow it deliberately"
        );
        failed = true;
    }
    if failed {
        eprintln!("check: perf gate failed (tolerance {:.0}%)", tolerance * 100.0);
        std::process::exit(1)
    }
}

// ---------------------------------------------------------------------
// Loadgen mode: multi-tenant load against an in-process daemon.

/// SIGTERM/SIGINT handling for loadgen without any dependency — the
/// same flag-polling pattern as the `eend-serve` binary, so the CI
/// smoke job can assert a clean drain under SIGTERM.
#[cfg(unix)]
mod loadgen_signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod loadgen_signals {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

struct LoadgenOpts {
    campaigns: usize,
    subscribers: usize,
    seeds: u64,
    secs: u64,
    workers: Option<usize>,
    serial: bool,
    curve: Option<Vec<usize>>,
    json: bool,
    json_out: Option<String>,
}

fn loadgen_usage() -> ! {
    eprintln!(
        "usage: eend-cli loadgen [--campaigns N] [--subscribers M] [--seeds K]\n\
         \u{20}                       [--secs S] [--workers W] [--serial]\n\
         \u{20}                       [--curve 1,2,4,8] [--json] [--json-out FILE]\n\
         \u{20}  Submits N campaigns (distinct fingerprints) to an in-process\n\
         \u{20}  eend-serve daemon over TCP, with M /stream subscribers each, and\n\
         \u{20}  reports submits/s, campaigns-completed/s, time-to-first-record\n\
         \u{20}  and p50/p99 subscriber fan-out latency.\n\
         \u{20}  --serial waits for each campaign before submitting the next (the\n\
         \u{20}  single-runner baseline); --curve runs a serial + concurrent pair\n\
         \u{20}  per level and emits the eend-loadgen/1 scaling record."
    );
    std::process::exit(2)
}

fn parse_loadgen(args: impl Iterator<Item = String>) -> LoadgenOpts {
    let mut o = LoadgenOpts {
        campaigns: 4,
        subscribers: 2,
        seeds: 2,
        secs: 15,
        workers: None,
        serial: false,
        curve: None,
        json: false,
        json_out: None,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                loadgen_usage()
            })
        };
        match a.as_str() {
            "--campaigns" => {
                o.campaigns = val("--campaigns").parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--subscribers" => {
                o.subscribers = val("--subscribers").parse().unwrap_or_else(|_| loadgen_usage())
            }
            "--seeds" => o.seeds = val("--seeds").parse().unwrap_or_else(|_| loadgen_usage()),
            "--secs" => o.secs = val("--secs").parse().unwrap_or_else(|_| loadgen_usage()),
            "--workers" => {
                o.workers = Some(val("--workers").parse().unwrap_or_else(|_| loadgen_usage()))
            }
            "--serial" => o.serial = true,
            "--curve" => o.curve = Some(parse_list("--curve", &val("--curve"), loadgen_usage)),
            "--json" => o.json = true,
            "--json-out" => o.json_out = Some(val("--json-out")),
            "--help" | "-h" => loadgen_usage(),
            other => {
                eprintln!("error: unknown loadgen argument {other}");
                loadgen_usage()
            }
        }
    }
    if o.campaigns == 0 || o.seeds == 0 || o.curve.as_deref().is_some_and(|c| c.contains(&0)) {
        loadgen_usage()
    }
    o
}

/// One loadgen HTTP request against the in-process daemon; responses
/// are close-delimited, so read-to-end is the whole body.
fn lg_request(addr: std::net::SocketAddr, raw: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).expect("connect to loadgen daemon");
    s.write_all(raw.as_bytes()).expect("send request");
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

fn lg_get(addr: std::net::SocketAddr, path: &str) -> String {
    lg_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn lg_body(resp: &str) -> &str {
    resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

/// The `k`-th loadgen campaign: distinct name, same shape, so the
/// daemon sees N different fingerprints of equal cost.
fn loadgen_spec(round: &str, k: usize, seeds: u64, secs: u64) -> CampaignSpec {
    CampaignSpec::new(&format!("loadgen-{round}-{k}"), BaseScenario::Small)
        .stacks(vec![stacks::titan_pc()])
        .rates(vec![2.0, 4.0])
        .seeds(seeds)
        .secs(secs)
}

/// Per-subscriber trace: elapsed-since-round-start of each streamed
/// line, in arrival order.
type SubscriberTrace = Vec<std::time::Duration>;

/// One measured loadgen round.
struct LoadgenRound {
    concurrency: usize,
    serial: bool,
    campaigns: usize,
    jobs_total: usize,
    submit_wall_s: f64,
    wall_s: f64,
    completed_per_s: f64,
    jobs_per_s: f64,
    ttfr_p50_ms: f64,
    ttfr_max_ms: f64,
    fanout_p50_ms: f64,
    fanout_p99_ms: f64,
    interrupted: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one round: a fresh daemon + data dir, `campaigns` submissions
/// (all at once, or one at a time under `serial`), `subscribers` live
/// `/stream` tails per campaign, and the clock on everything.
fn loadgen_round(
    tag: &str,
    workers: usize,
    campaigns: usize,
    subscribers: usize,
    seeds: u64,
    secs: u64,
    serial: bool,
) -> LoadgenRound {
    let data = std::env::temp_dir().join(format!(
        "eend-loadgen-{}-{tag}-{campaigns}{}",
        std::process::id(),
        if serial { "-serial" } else { "" }
    ));
    let _ = std::fs::remove_dir_all(&data);
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig { data_dir: data.clone(), executor: Executor::with_workers(workers) },
    )
    .unwrap_or_else(|e| die(&e));
    let addr = handle.addr();

    let specs: Vec<CampaignSpec> =
        (0..campaigns).map(|k| loadgen_spec(tag, k, seeds, secs)).collect();
    let jobs_total: usize = specs.iter().map(|s| s.job_count()).sum();

    let start = std::time::Instant::now();
    let mut submit_wall_s = 0.0;
    let mut submit_at: Vec<std::time::Duration> = Vec::with_capacity(campaigns);
    let mut fps: Vec<String> = Vec::with_capacity(campaigns);
    let mut tails: Vec<(usize, std::thread::JoinHandle<SubscriberTrace>)> = Vec::new();
    let mut interrupted = false;

    let submit_one = |k: usize| -> String {
        let axes = eend::campaign::SpecAxes::of(&specs[k]).expect("loadgen spec axes");
        let body = format!("{{\"campaign\":\"{}\",\"axes\":{}}}", specs[k].name, axes.to_json());
        let resp = lg_request(
            addr,
            &format!(
                "POST /submit HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        let b = lg_body(&resp);
        let at = b.find("\"fingerprint\":\"").expect("submit accepted") + 15;
        b[at..at + 16].to_owned()
    };
    let spawn_tails = |k: usize,
                       fp: &str,
                       tails: &mut Vec<(usize, std::thread::JoinHandle<SubscriberTrace>)>| {
        for _ in 0..subscribers {
            let fp = fp.to_owned();
            tails.push((
                k,
                std::thread::spawn(move || {
                    use std::io::{BufRead as _, Write as _};
                    let mut conn =
                        std::net::TcpStream::connect(addr).expect("subscriber connect");
                    conn.write_all(
                        format!("GET /stream/{fp} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
                    )
                    .expect("subscriber request");
                    let mut reader = std::io::BufReader::new(conn);
                    let mut line = String::new();
                    let mut in_body = false;
                    let mut trace = Vec::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        if !in_body {
                            in_body = line == "\r\n";
                            continue;
                        }
                        trace.push(start.elapsed());
                    }
                    trace
                }),
            ));
        }
    };
    let wait_campaign_done = |fp: &str, interrupted: &mut bool| {
        while !*interrupted {
            let status = lg_get(addr, &format!("/status/{fp}"));
            let b = lg_body(&status);
            if b.contains("\"state\":\"done\"") {
                return;
            }
            if b.contains("\"state\":\"failed\"") {
                die(&format!("loadgen campaign {fp} failed: {b}"));
            }
            if loadgen_signals::requested() {
                *interrupted = true;
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };

    if serial {
        // The PR 7 single-runner baseline: one campaign in flight at a
        // time, submits/s is gated on full campaign completion.
        for k in 0..campaigns {
            if interrupted {
                break;
            }
            let t = std::time::Instant::now();
            let fp = submit_one(k);
            submit_wall_s += t.elapsed().as_secs_f64();
            submit_at.push(start.elapsed());
            spawn_tails(k, &fp, &mut tails);
            wait_campaign_done(&fp, &mut interrupted);
            fps.push(fp);
        }
    } else {
        let t = std::time::Instant::now();
        for k in 0..campaigns {
            let fp = submit_one(k);
            submit_at.push(start.elapsed());
            spawn_tails(k, &fp, &mut tails);
            fps.push(fp);
        }
        submit_wall_s = t.elapsed().as_secs_f64();
        for fp in &fps {
            wait_campaign_done(fp, &mut interrupted);
            if interrupted {
                break;
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let completed = fps.len().min(if interrupted { 0 } else { fps.len() });

    // Draining the daemon closes every live stream, so the subscriber
    // threads all come home — interrupted or not.
    handle.shutdown();
    let mut traces: Vec<(usize, SubscriberTrace)> = Vec::with_capacity(tails.len());
    for (k, t) in tails {
        traces.push((k, t.join().expect("subscriber thread")));
    }
    let _ = std::fs::remove_dir_all(&data);

    // Time to first record, per campaign: earliest streamed line across
    // its subscribers, relative to its own submit instant.
    let mut ttfr_ms: Vec<f64> = Vec::new();
    for (k, submit) in submit_at.iter().enumerate() {
        let first = traces
            .iter()
            .filter(|(tk, trace)| *tk == k && !trace.is_empty())
            .map(|(_, trace)| trace[0])
            .min();
        if let Some(first) = first {
            ttfr_ms.push((first.saturating_sub(*submit)).as_secs_f64() * 1e3);
        }
    }
    ttfr_ms.sort_by(|a, b| a.total_cmp(b));

    // Fan-out latency, per (campaign, record): how far the slowest
    // subscriber trails the fastest for the same record.
    let mut fanout_ms: Vec<f64> = Vec::new();
    for k in 0..campaigns {
        let per_sub: Vec<&SubscriberTrace> =
            traces.iter().filter(|(tk, _)| *tk == k).map(|(_, t)| t).collect();
        let Some(records) = per_sub.iter().map(|t| t.len()).min() else { continue };
        for i in 0..records {
            let times = per_sub.iter().map(|t| t[i]);
            let (min, max) = (times.clone().min().unwrap(), times.max().unwrap());
            fanout_ms.push((max.saturating_sub(min)).as_secs_f64() * 1e3);
        }
    }
    fanout_ms.sort_by(|a, b| a.total_cmp(b));

    LoadgenRound {
        concurrency: if serial { 1 } else { campaigns },
        serial,
        campaigns: completed,
        jobs_total,
        submit_wall_s,
        wall_s,
        completed_per_s: completed as f64 / wall_s,
        jobs_per_s: jobs_total as f64 / wall_s,
        ttfr_p50_ms: percentile(&ttfr_ms, 50.0),
        ttfr_max_ms: ttfr_ms.last().copied().unwrap_or(0.0),
        fanout_p50_ms: percentile(&fanout_ms, 50.0),
        fanout_p99_ms: percentile(&fanout_ms, 99.0),
        interrupted,
    }
}

fn loadgen_round_json(r: &LoadgenRound) -> String {
    format!(
        "{{\"mode\": \"{}\", \"campaigns\": {}, \"jobs_total\": {}, \"submit_wall_s\": {:.4}, \
         \"wall_s\": {:.4}, \"completed_per_s\": {:.3}, \"jobs_per_s\": {:.1}, \
         \"ttfr_p50_ms\": {:.2}, \"ttfr_max_ms\": {:.2}, \"fanout_p50_ms\": {:.2}, \
         \"fanout_p99_ms\": {:.2}}}",
        if r.serial { "serial" } else { "concurrent" },
        r.campaigns,
        r.jobs_total,
        r.submit_wall_s,
        r.wall_s,
        r.completed_per_s,
        r.jobs_per_s,
        r.ttfr_p50_ms,
        r.ttfr_max_ms,
        r.fanout_p50_ms,
        r.fanout_p99_ms
    )
}

fn print_loadgen_round(r: &LoadgenRound) {
    println!(
        "{:10} x{:<2} {:>7.2} campaigns/s  {:>8.1} jobs/s  ttfr p50 {:>7.1} ms  \
         fanout p50/p99 {:.1}/{:.1} ms  ({} campaigns, {} jobs, {:.3} s){}",
        if r.serial { "serial" } else { "concurrent" },
        r.concurrency,
        r.completed_per_s,
        r.jobs_per_s,
        r.ttfr_p50_ms,
        r.fanout_p50_ms,
        r.fanout_p99_ms,
        r.campaigns,
        r.jobs_total,
        r.wall_s,
        if r.interrupted { "  [interrupted]" } else { "" }
    );
}

fn run_loadgen(o: LoadgenOpts) {
    loadgen_signals::install();
    let workers = o.workers.map(|w| w.max(1)).unwrap_or_else(|| Executor::bounded().workers());
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let levels: Vec<usize> = match &o.curve {
        Some(levels) => levels.clone(),
        None => vec![o.campaigns],
    };
    eprintln!(
        "loadgen: {} worker(s), {} host core(s), {} subscriber(s)/campaign, \
         {} seed(s) x {} s grid cells",
        workers, host_cores, o.subscribers, o.seeds, o.secs
    );

    // --curve measures a serial baseline *and* a concurrent round per
    // level; a plain run measures exactly the mode asked for.
    let mut rounds: Vec<LoadgenRound> = Vec::new();
    for (i, &level) in levels.iter().enumerate() {
        if loadgen_signals::requested() {
            break;
        }
        if o.curve.is_some() || o.serial {
            let r = loadgen_round(
                &format!("s{i}"),
                workers,
                level,
                o.subscribers,
                o.seeds,
                o.secs,
                true,
            );
            print_loadgen_round(&r);
            rounds.push(r);
        }
        if loadgen_signals::requested() {
            break;
        }
        if o.curve.is_some() || !o.serial {
            let r = loadgen_round(
                &format!("c{i}"),
                workers,
                level,
                o.subscribers,
                o.seeds,
                o.secs,
                false,
            );
            print_loadgen_round(&r);
            rounds.push(r);
        }
    }
    let interrupted = loadgen_signals::requested() || rounds.iter().any(|r| r.interrupted);

    if o.json || o.json_out.is_some() {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"eend-loadgen/1\",");
        let _ = writeln!(out, "  \"workers\": {workers},");
        let _ = writeln!(out, "  \"host_cores\": {host_cores},");
        let _ = writeln!(out, "  \"subscribers_per_campaign\": {},", o.subscribers);
        let _ = writeln!(out, "  \"jobs_per_campaign\": {},", 2 * o.seeds);
        let _ = writeln!(out, "  \"sim_secs_per_job\": {},", o.secs);
        let _ = writeln!(out, "  \"rounds\": [");
        for (i, r) in rounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"concurrency\": {}, \"round\": {}}}{}",
                r.concurrency,
                loadgen_round_json(r),
                if i + 1 < rounds.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"analysis\": \"{}\"", loadgen_analysis(&rounds, host_cores));
        let _ = writeln!(out, "}}");
        if o.json {
            print!("{out}");
        }
        if let Some(path) = &o.json_out {
            write_atomic(std::path::Path::new(path), out.as_bytes())
                .unwrap_or_else(|e| die(&e));
            eprintln!("loadgen: wrote {path}");
        }
    }
    if interrupted {
        eprintln!("loadgen: interrupted, daemon drained cleanly");
        return;
    }
    eprintln!("loadgen: done");
}

/// One-line scaling verdict for the JSON record: concurrent-vs-serial
/// speedup per level, with the single-core caveat spelled out.
fn loadgen_analysis(rounds: &[LoadgenRound], host_cores: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let levels: std::collections::BTreeSet<usize> =
        rounds.iter().map(|r| if r.serial { r.campaigns.max(r.concurrency) } else { r.concurrency }).collect();
    for level in levels {
        let serial = rounds
            .iter()
            .find(|r| r.serial && r.campaigns.max(r.concurrency) == level && r.completed_per_s > 0.0);
        let conc = rounds
            .iter()
            .find(|r| !r.serial && r.concurrency == level && r.completed_per_s > 0.0);
        if let (Some(s), Some(c)) = (serial, conc) {
            parts.push(format!(
                "{}x concurrent = {:.2}x serial throughput",
                level,
                c.completed_per_s / s.completed_per_s
            ));
        }
    }
    let caveat = if host_cores == 1 {
        "Single-core host: jobs serialize on one worker either way, so near-parity \
         (not >=2x) is the expected curve; the scheduler's win here is fairness and \
         time-to-first-record, not aggregate throughput. Re-run on a multi-core host \
         to see the scaling."
    } else {
        ""
    };
    if parts.is_empty() {
        caveat.to_owned()
    } else {
        format!("{}. {caveat}", parts.join("; "))
    }
}

/// Options of the `design` subcommand.
struct DesignOpts {
    instance: String,
    heuristic: String,
    search: String,
    seed: u64,
    budget: u64,
    objective: String,
    oracle: String,
    secs: f64,
    sim_seeds: u64,
    workers: Option<usize>,
    out: Option<String>,
    check_improves: bool,
}

fn design_usage() -> ! {
    eprintln!(
        "usage: eend-cli design [--instance grid7|random30|random50]\n\
         \u{20}                      [--heuristic all|mtpr|mtpr+|joint|idlefirst|mpc|lifetime]\n\
         \u{20}                      [--search multistart|anneal] [--seed N] [--budget K]\n\
         \u{20}                      [--objective energy|goodput|lifetime]\n\
         \u{20}                      [--oracle fluid|sim] [--secs S] [--sim-seeds N]\n\
         \u{20}                      [--workers W] [--out DIR] [--check-improves]\n\
         \u{20}                      [--list-instances]\n\
         \u{20}  trace JSONL streams to stdout; the summary goes to stderr\n\
         \u{20}  --out DIR persists trace.jsonl + winner.json and caches every\n\
         \u{20}  score under DIR/cache — an identical re-run executes 0 evaluations\n\
         \u{20}  --heuristic NAME scores that single constructive design instead\n\
         \u{20}  --check-improves exits 1 if the winner is worse than every-start best"
    );
    std::process::exit(2)
}

fn parse_design(args: impl Iterator<Item = String>) -> DesignOpts {
    let mut o = DesignOpts {
        instance: "grid7".into(),
        heuristic: "all".into(),
        search: "multistart".into(),
        seed: 1,
        budget: 200,
        objective: "energy".into(),
        oracle: "fluid".into(),
        secs: 900.0,
        sim_seeds: 2,
        workers: None,
        out: None,
        check_improves: false,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {what} needs a value");
                design_usage()
            })
        };
        match a.as_str() {
            "--instance" => o.instance = val("--instance"),
            "--heuristic" => o.heuristic = val("--heuristic").to_ascii_lowercase(),
            "--search" => o.search = val("--search"),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| design_usage()),
            "--budget" => o.budget = val("--budget").parse().unwrap_or_else(|_| design_usage()),
            "--objective" => o.objective = val("--objective"),
            "--oracle" => o.oracle = val("--oracle"),
            "--secs" => o.secs = val("--secs").parse().unwrap_or_else(|_| design_usage()),
            "--sim-seeds" => {
                o.sim_seeds = val("--sim-seeds").parse().unwrap_or_else(|_| design_usage())
            }
            "--workers" => {
                o.workers = Some(val("--workers").parse().unwrap_or_else(|_| design_usage()))
            }
            "--out" => o.out = Some(val("--out")),
            "--check-improves" => o.check_improves = true,
            "--list-instances" => {
                for name in eend::opt::instances::NAMES {
                    println!("{name}");
                }
                std::process::exit(0)
            }
            "--help" | "-h" => design_usage(),
            other => {
                eprintln!("error: unknown design argument {other}");
                design_usage()
            }
        }
    }
    if o.budget == 0 || o.secs <= 0.0 || o.sim_seeds == 0 {
        design_usage()
    }
    o
}

/// Maps a CLI heuristic name to the designer (`None` means `all`: search).
fn design_heuristic(name: &str) -> Option<eend::core::design::Heuristic> {
    use eend::core::design::{CommMetric, Heuristic};
    match name {
        "all" => None,
        "mtpr" => Some(Heuristic::CommFirst(CommMetric::RadiatedPower)),
        "mtpr+" => Some(Heuristic::CommFirst(CommMetric::TotalPower)),
        "joint" => Some(Heuristic::Joint { use_rate: true, bandwidth_bps: 2_000_000.0 }),
        "idlefirst" => Some(Heuristic::IdleFirst),
        "mpc" | "mpc-steiner" => Some(Heuristic::MpcSteiner),
        "lifetime" | "lifetimeaware" => {
            Some(Heuristic::LifetimeAware { bandwidth_bps: 2_000_000.0 })
        }
        other => {
            eprintln!("error: unknown heuristic {other:?}");
            design_usage()
        }
    }
}

/// Renders the winning design as a small JSON document.
fn render_winner(
    o: &DesignOpts,
    fp: u64,
    score: &eend::opt::Score,
    objective_value: f64,
    design: &eend::core::design::Design,
) -> String {
    let routes: Vec<String> = design
        .routes
        .iter()
        .map(|r| match r {
            None => "null".to_owned(),
            Some(path) => {
                let hops: Vec<String> = path.iter().map(usize::to_string).collect();
                format!("[{}]", hops.join(","))
            }
        })
        .collect();
    let awake: Vec<String> = design
        .active
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(i, _)| i.to_string())
        .collect();
    let ttfd = if score.ttfd_s.is_finite() { score.ttfd_s.to_string() } else { "null".into() };
    format!(
        concat!(
            "{{\"instance\":\"{}\",\"search\":\"{}\",\"seed\":{},\"budget\":{},",
            "\"objective\":\"{}\",\"fp\":\"{:016x}\",\"enetwork_j\":{},",
            "\"delivered_bits\":{},\"ttfd_s\":{},\"objective_value\":{},",
            "\"routes\":[{}],\"active\":[{}]}}\n"
        ),
        o.instance,
        if design_heuristic(&o.heuristic).is_some() { &o.heuristic } else { &o.search },
        o.seed,
        o.budget,
        o.objective,
        fp,
        score.enetwork_j,
        score.delivered_bits,
        ttfd,
        objective_value,
        routes.join(","),
        awake.join(",")
    )
}

/// The shared driver behind `eend-cli design`, generic over the inner
/// oracle (fluid or packet-sim).
fn drive_design<O: eend::opt::EvalOracle>(o: &DesignOpts, inner: O) {
    use eend::core::design::Designer;
    use eend::opt::{
        anneal, design_fingerprint, multistart, problem_fingerprint, CachedOracle, EvalOracle,
        Objective, SearchOpts, TraceEvent,
    };

    let Some(problem) = eend::opt::instances::by_name(&o.instance) else {
        eprintln!("error: unknown instance {:?} (try --list-instances)", o.instance);
        design_usage()
    };
    let Some(objective) = Objective::parse(&o.objective) else {
        eprintln!("error: unknown objective {:?}", o.objective);
        design_usage()
    };
    let problem_fp = problem_fingerprint(&problem);
    let label = inner.label();
    let mut oracle = match &o.out {
        Some(dir) => {
            let cache_dir = std::path::Path::new(dir).join("cache");
            CachedOracle::on_disk(inner, &cache_dir, problem_fp).unwrap_or_else(|e| {
                eprintln!("error: cannot open eval cache: {e}");
                std::process::exit(1)
            })
        }
        None => CachedOracle::in_memory(inner),
    };

    let opts =
        SearchOpts { seed: o.seed, budget: o.budget, objective, ..SearchOpts::new() };
    let result = match design_heuristic(&o.heuristic) {
        Some(h) => {
            // Baseline probe: score one constructive design, no search.
            let design = h.design(&problem);
            let score = oracle.evaluate(&problem, &design);
            let objective_value = objective.value(&score);
            let ev = TraceEvent {
                iter: 0,
                kind: format!("start:{}", h.name()),
                fp: design_fingerprint(&problem, &design),
                enetwork_j: score.enetwork_j,
                objective: objective_value,
                accepted: true,
                best: true,
            };
            eend::opt::SearchResult {
                best_design: design,
                best_score: score,
                best_objective: objective_value,
                baselines: vec![(h.name(), score)],
                trace: vec![ev],
                evals: 1,
            }
        }
        None => match o.search.as_str() {
            "multistart" => multistart(&problem, &mut oracle, &opts),
            "anneal" => anneal(&problem, &mut oracle, &opts),
            other => {
                eprintln!("error: unknown search strategy {other:?}");
                design_usage()
            }
        },
    };

    let trace = result.trace_jsonl();
    print!("{trace}");
    let winner_fp = design_fingerprint(&problem, &result.best_design);
    let winner =
        render_winner(o, winner_fp, &result.best_score, result.best_objective, &result.best_design);
    if let Some(dir) = &o.out {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1)
        });
        write_atomic(&dir.join("trace.jsonl"), trace.as_bytes()).expect("write trace");
        write_atomic(&dir.join("winner.json"), winner.as_bytes()).expect("write winner");
    }

    eprintln!(
        "instance {} ({} nodes, {} demands), oracle {label}, objective {}",
        o.instance,
        problem.instance.node_count(),
        problem.demands.len(),
        objective.name()
    );
    let mut best_baseline = f64::INFINITY;
    for (name, score) in &result.baselines {
        let v = objective.value(score);
        best_baseline = best_baseline.min(v);
        eprintln!("baseline {name}: Enetwork {:.1} J (objective {v:.4})", score.enetwork_j);
    }
    eprintln!(
        "winner: Enetwork {:.1} J, objective {:.4}, fingerprint {winner_fp:016x}",
        result.best_score.enetwork_j, result.best_objective
    );
    eprintln!(
        "{} oracle evaluation(s) executed, {} served from cache",
        oracle.inner().calls(),
        oracle.hits()
    );
    if o.check_improves && result.best_objective > best_baseline {
        eprintln!(
            "error: winner objective {} is worse than the best single-shot heuristic {}",
            result.best_objective, best_baseline
        );
        std::process::exit(1)
    }
}

fn run_design(o: DesignOpts) {
    match o.oracle.as_str() {
        "fluid" => drive_design(&o, eend::opt::FluidOracle::standard(o.secs)),
        "sim" => {
            let executor =
                o.workers.map(Executor::with_workers).unwrap_or_else(Executor::bounded);
            let seeds: Vec<u64> = (1..=o.sim_seeds).collect();
            drive_design(&o, eend::opt::SimOracle::new(o.secs, seeds, executor))
        }
        other => {
            eprintln!("error: unknown oracle {other:?}");
            design_usage()
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("campaign") {
        args.next();
        if args.peek().map(String::as_str) == Some("merge") {
            args.next();
            return run_merge(parse_merge(args));
        }
        return run_campaign(parse_campaign(args));
    }
    if args.peek().map(String::as_str) == Some("bench") {
        args.next();
        return run_bench(parse_bench(args));
    }
    if args.peek().map(String::as_str) == Some("loadgen") {
        args.next();
        return run_loadgen(parse_loadgen(args));
    }
    if args.peek().map(String::as_str) == Some("design") {
        args.next();
        return run_design(parse_design(args));
    }
    let o = parse();
    let Some(stack) = stacks::by_name(&o.stack) else {
        eprintln!("error: unknown stack {:?} (try --list-stacks)", o.stack);
        std::process::exit(2)
    };
    let card = match o.card.to_ascii_lowercase().as_str() {
        "aironet350" | "aironet" => cards::aironet_350(),
        "cabletron" => cards::cabletron(),
        "hypothetical" => cards::hypothetical_cabletron(),
        "mica2" => cards::mica2(),
        "leach2" => cards::leach_n2(1.0),
        "leach4" => cards::leach_n4(1.0),
        other => {
            eprintln!("error: unknown card {other:?}");
            usage()
        }
    };
    let name = stack.name.clone();
    let mut scenario = Scenario::new(
        Placement::UniformRandom { n: o.nodes, width: o.area, height: o.area },
        card,
        stack,
        FlowSpec::cbr(o.flows, o.rate_kbps),
        SimDuration::from_secs(o.secs),
        o.seed,
    );
    if o.speed > 0.0 {
        scenario =
            scenario.with_mobility(Mobility::random_waypoint((o.speed / 2.0).max(0.1), o.speed, 5.0));
    }
    scenario.flows = scenario.flows.with_model(o.traffic.clone());
    if let Some(name) = &o.radio_profile {
        let profile = radio_profiles::by_name(name).unwrap_or_else(|| {
            eprintln!("error: unknown radio profile {name:?}");
            usage()
        });
        if let eend::wireless::CardAssignment::Alternating(cards) = &profile.assignment {
            // PHY range always comes from --card; a profile mixing cards
            // of a different range would be billed unphysically.
            if let Some(c) = cards.iter().find(|c| c.nominal_range_m != card.nominal_range_m) {
                eprintln!(
                    "error: radio profile {name:?} mixes {} ({} m range) but --card {} has a \
                     {} m range — profiles only apply over a range-matched base card",
                    c.name, c.nominal_range_m, card.name, card.nominal_range_m
                );
                std::process::exit(2)
            }
        }
        scenario = scenario.with_card_assignment(profile.assignment);
    }
    let node_cards = scenario.node_cards(o.nodes);
    let m = Simulator::new(&scenario).run();

    if o.csv {
        // onoff(ON,OFF) labels contain a comma: quote per RFC 4180.
        let traffic_label = o.traffic.label();
        let traffic_field = if traffic_label.contains(',') {
            format!("\"{traffic_label}\"")
        } else {
            traffic_label
        };
        eprintln!(
            "stack,nodes,area_m,flows,rate_kbps,secs,seed,traffic,radio,delivery,\
             goodput_bit_per_j,enetwork_j,transmit_j,control_j,relays,rreq,dsdv_updates,\
             lifetime_1kj_s"
        );
        println!(
            "{},{},{},{},{},{},{},{},{},{:.4},{:.1},{:.1},{:.1},{:.1},{},{},{},{:.0}",
            name,
            o.nodes,
            o.area,
            o.flows,
            o.rate_kbps,
            o.secs,
            o.seed,
            traffic_field,
            o.radio_profile.as_deref().unwrap_or("uniform"),
            m.delivery_ratio(),
            m.energy_goodput_bit_per_j(),
            m.enetwork_j(),
            m.transmit_energy_j(),
            m.control_energy_j(),
            m.data_forwarders,
            m.rreq_tx,
            m.dsdv_update_tx,
            m.lifetime_to_first_death_s(1000.0),
        );
    } else {
        println!("{name} — {} nodes, {}x{} m², {} flows @ {} Kbit/s, {} s (seed {})",
            o.nodes, o.area, o.area, o.flows, o.rate_kbps, o.secs, o.seed);
        println!("  delivery ratio      {:.4} ({}/{} packets)", m.delivery_ratio(), m.data_delivered, m.data_sent);
        println!("  energy goodput      {:.1} bit/J", m.energy_goodput_bit_per_j());
        println!("  Enetwork            {:.1} J (tx {:.1} J, control {:.1} J)", m.enetwork_j(), m.transmit_energy_j(), m.control_energy_j());
        println!("  relays              {}", m.data_forwarders);
        println!("  control frames      {} RREQ, {} RREP, {} RERR, {} DSDV, {} ATIM", m.rreq_tx, m.rrep_tx, m.rerr_tx, m.dsdv_update_tx, m.atim_tx);
        println!("  collisions          {} broadcast, {} RTS; {} link failures", m.broadcast_collisions, m.rts_collisions, m.link_failures);
        println!("  drops               {} no-route, {} link, {} buffer, {} ifq", m.drops_no_route, m.drops_link_failure, m.drops_buffer, m.drops_ifq);
        println!("  lifetime (1 kJ)     {:.0} s to first death, imbalance {:.2}", m.lifetime_to_first_death_s(1000.0), m.energy_imbalance());
        // Heterogeneous runs: break the energy bill down by card class.
        let by_card = m.energy_by_card(&node_cards);
        if by_card.len() > 1 {
            for (name, count, report) in by_card {
                println!(
                    "  energy[{name}]      {:.1} J over {count} node(s)",
                    report.total_mj() / 1000.0
                );
            }
        }
    }
}
